"""Procedural image tasks that stand in for CIFAR10 / ImageNet / VOC.

Each class is defined by a *prototype*: an oriented sinusoidal texture with
a class-specific orientation, spatial frequency, colour tint, and blob
placement.  Samples jitter every prototype attribute, add a low-amplitude
distractor texture from another class, and pixel noise — so a CNN can learn
the task to high-but-imperfect accuracy, and corruptions genuinely destroy
class evidence, as on real data.

Everything is deterministic given the config seed: class prototypes derive
from one child stream, per-split samples from others, so the train and test
splits share prototypes but not noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.utils.rng import as_rng, spawn_rng

_SPLIT_OFFSETS = {"train": 1, "test": 2, "shifted": 3, "extra": 4}


@dataclass(frozen=True)
class ClassPrototype:
    """Generative parameters for one class."""

    orientation: float  # radians
    frequency: float  # cycles across the image
    phase: float
    tint: np.ndarray  # (3,) channel gains in [0.3, 1]
    blob_center: np.ndarray  # (2,) in [0.25, 0.75] fractional coords
    blob_sigma: float  # fractional width


@dataclass(frozen=True)
class ClassificationTaskConfig:
    """Configuration of a synthetic classification task."""

    num_classes: int = 10
    image_size: int = 16
    seed: int = 0
    texture_amplitude: float = 0.5
    distractor_amplitude: float = 0.18
    pixel_noise: float = 0.06
    orientation_jitter: float = 0.12
    frequency_jitter: float = 0.35
    blob_jitter: float = 0.08
    tint_jitter: float = 0.10

    def prototypes(self) -> list[ClassPrototype]:
        """Deterministic class prototypes for this config's seed."""
        rng = as_rng(self.seed)
        protos = []
        for k in range(self.num_classes):
            # Orientations evenly spread with a small random offset so
            # neighbouring classes are confusable but separable.
            orientation = np.pi * k / self.num_classes + rng.uniform(-0.05, 0.05)
            frequency = rng.uniform(1.5, 4.0)
            tint = rng.uniform(0.35, 1.0, size=3)
            tint /= tint.max()
            protos.append(
                ClassPrototype(
                    orientation=orientation,
                    frequency=frequency,
                    phase=rng.uniform(0, 2 * np.pi),
                    tint=tint.astype(np.float32),
                    blob_center=rng.uniform(0.3, 0.7, size=2).astype(np.float32),
                    blob_sigma=rng.uniform(0.22, 0.34),
                )
            )
        return protos


def _grating(
    size: int,
    orientation: np.ndarray,
    frequency: np.ndarray,
    phase: np.ndarray,
) -> np.ndarray:
    """Batched oriented sinusoidal gratings, shape (N, size, size) in [0, 1]."""
    coords = np.linspace(-0.5, 0.5, size, dtype=np.float32)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    c = np.cos(orientation)[:, None, None]
    s = np.sin(orientation)[:, None, None]
    proj = c * xx[None] + s * yy[None]
    wave = np.sin(
        2 * np.pi * frequency[:, None, None] * proj + phase[:, None, None]
    )
    return 0.5 * (wave + 1.0)


def _blob(size: int, centers: np.ndarray, sigmas: np.ndarray) -> np.ndarray:
    """Batched Gaussian windows, shape (N, size, size) in [0, 1]."""
    coords = np.linspace(0.0, 1.0, size, dtype=np.float32)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")
    dy = yy[None] - centers[:, 0, None, None]
    dx = xx[None] - centers[:, 1, None, None]
    return np.exp(-(dx**2 + dy**2) / (2 * sigmas[:, None, None] ** 2))


def _render_class_textures(
    cfg: ClassificationTaskConfig,
    labels: np.ndarray,
    rng: np.random.Generator,
    amplitude: float,
    jitter_scale: float = 1.0,
) -> np.ndarray:
    """Render jittered class textures for ``labels``; shape (N, 3, S, S)."""
    protos = cfg.prototypes()
    n = labels.shape[0]
    orientation = np.array([protos[k].orientation for k in labels], dtype=np.float32)
    frequency = np.array([protos[k].frequency for k in labels], dtype=np.float32)
    tint = np.stack([protos[k].tint for k in labels])
    centers = np.stack([protos[k].blob_center for k in labels])
    sigmas = np.array([protos[k].blob_sigma for k in labels], dtype=np.float32)

    orientation = orientation + rng.normal(
        0, cfg.orientation_jitter * jitter_scale, n
    ).astype(np.float32)
    frequency = frequency + rng.normal(0, cfg.frequency_jitter * jitter_scale, n).astype(
        np.float32
    )
    phase = rng.uniform(0, 2 * np.pi, n).astype(np.float32)
    centers = centers + rng.normal(0, cfg.blob_jitter * jitter_scale, (n, 2)).astype(
        np.float32
    )
    tint = np.clip(
        tint + rng.normal(0, cfg.tint_jitter * jitter_scale, (n, 3)).astype(np.float32),
        0.1,
        1.0,
    )

    texture = _grating(cfg.image_size, orientation, frequency, phase)
    window = _blob(cfg.image_size, centers, sigmas)
    mono = amplitude * texture * window  # (N, S, S)
    return mono[:, None, :, :] * tint[:, :, None, None]


def generate_classification(
    cfg: ClassificationTaskConfig,
    n_samples: int,
    split: str = "train",
    jitter_scale: float = 1.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``(images, labels)`` for one split.

    ``images`` is ``(N, 3, S, S)`` float32 in [0, 1]; ``labels`` is ``(N,)``
    int64.  Splits draw from independent random streams of the same
    prototypes, so "train" and "test" are i.i.d. from one distribution.
    """
    if split not in _SPLIT_OFFSETS:
        raise ValueError(f"unknown split {split!r}; choose from {sorted(_SPLIT_OFFSETS)}")
    rng_proto = as_rng(cfg.seed * 1_000_003 + _SPLIT_OFFSETS[split])
    rng_labels, rng_signal, rng_distract, rng_noise = spawn_rng(rng_proto, 4)

    labels = rng_labels.integers(0, cfg.num_classes, size=n_samples)
    images = _render_class_textures(
        cfg, labels, rng_signal, cfg.texture_amplitude, jitter_scale
    )

    # Distractor texture of a *different* class at low amplitude: forces the
    # model to weigh evidence rather than key on any texture present.
    shift = rng_distract.integers(1, cfg.num_classes, size=n_samples)
    distractor_labels = (labels + shift) % cfg.num_classes
    images += _render_class_textures(
        cfg, distractor_labels, rng_distract, cfg.distractor_amplitude, jitter_scale
    )

    base = 0.25 + 0.15 * rng_noise.random((n_samples, 1, 1, 1)).astype(np.float32)
    images += base
    images += rng_noise.normal(0, cfg.pixel_noise, images.shape).astype(np.float32)
    return np.clip(images, 0.0, 1.0).astype(np.float32), labels.astype(np.int64)


def prototype_logits(cfg: ClassificationTaskConfig, images: np.ndarray) -> np.ndarray:
    """Template-matching scores of each image against every class prototype.

    This generator-aware classifier plays the role of the paper's human
    reference (Fig. 5): it stays accurate under noise levels that break
    trained CNNs because it matches against the true class templates.

    Matching is phase-invariant: each class template is a quadrature pair of
    gratings (sin/cos at the class orientation and frequency) weighted by the
    class blob window and colour tint; the score is the quadrature energy.
    """
    protos = cfg.prototypes()
    k = len(protos)
    orientation = np.array([p.orientation for p in protos], dtype=np.float32)
    frequency = np.array([p.frequency for p in protos], dtype=np.float32)
    centers = np.stack([p.blob_center for p in protos])
    sigmas = np.array([p.blob_sigma for p in protos], dtype=np.float32)
    tints = np.stack([p.tint for p in protos])  # (K, 3)

    zeros = np.zeros(k, dtype=np.float32)
    quarter = np.full(k, np.pi / 2, dtype=np.float32)
    # Zero-mean quadrature carriers in [-1, 1].
    cos_wave = 2.0 * _grating(cfg.image_size, orientation, frequency, quarter) - 1.0
    sin_wave = 2.0 * _grating(cfg.image_size, orientation, frequency, zeros) - 1.0
    window = _blob(cfg.image_size, centers, sigmas)
    tint_w = tints / np.linalg.norm(tints, axis=1, keepdims=True)

    def templates(wave: np.ndarray) -> np.ndarray:
        t = (wave * window)[:, None, :, :] * tint_w[:, :, None, None]
        flat = t.reshape(k, -1)
        return flat / (np.linalg.norm(flat, axis=1, keepdims=True) + 1e-8)

    centered = images - images.mean(axis=(2, 3), keepdims=True)
    flat = centered.reshape(images.shape[0], -1)
    norms = np.linalg.norm(flat, axis=1, keepdims=True) + 1e-8
    unit = flat / norms
    score_cos = unit @ templates(cos_wave).T
    score_sin = unit @ templates(sin_wave).T
    return np.sqrt(score_cos**2 + score_sin**2)


# ------------------------------------------------------------- segmentation


@dataclass(frozen=True)
class SegmentationTaskConfig:
    """Configuration of the synthetic dense-labelling (VOC analog) task."""

    num_classes: int = 5  # foreground classes; label 0 is background
    image_size: int = 24
    seed: int = 0
    min_objects: int = 1
    max_objects: int = 3
    texture_amplitude: float = 0.7
    pixel_noise: float = 0.05
    classification: ClassificationTaskConfig = field(init=False)

    def __post_init__(self):
        object.__setattr__(
            self,
            "classification",
            ClassificationTaskConfig(
                num_classes=self.num_classes,
                image_size=self.image_size,
                seed=self.seed,
            ),
        )


def generate_segmentation(
    cfg: SegmentationTaskConfig,
    n_samples: int,
    split: str = "train",
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``(images, masks)`` for the VOC-analog task.

    ``images``: (N, 3, S, S) float32 in [0, 1].  ``masks``: (N, S, S) int64
    with 0 = background and 1..num_classes = object classes.
    """
    if split not in _SPLIT_OFFSETS:
        raise ValueError(f"unknown split {split!r}; choose from {sorted(_SPLIT_OFFSETS)}")
    rng = as_rng(cfg.seed * 2_000_003 + _SPLIT_OFFSETS[split])
    s = cfg.image_size
    protos = cfg.classification.prototypes()

    images = 0.3 + 0.1 * rng.random((n_samples, 1, 1, 1)).astype(np.float32)
    images = np.broadcast_to(images, (n_samples, 3, s, s)).copy()
    masks = np.zeros((n_samples, s, s), dtype=np.int64)

    coords = np.linspace(0.0, 1.0, s, dtype=np.float32)
    yy, xx = np.meshgrid(coords, coords, indexing="ij")

    n_objects = rng.integers(cfg.min_objects, cfg.max_objects + 1, size=n_samples)
    for i in range(n_samples):
        for _ in range(n_objects[i]):
            k = int(rng.integers(0, cfg.num_classes))
            proto = protos[k]
            center = rng.uniform(0.2, 0.8, size=2)
            radius = rng.uniform(0.12, 0.25)
            region = (yy - center[0]) ** 2 + (xx - center[1]) ** 2 <= radius**2
            orientation = proto.orientation + rng.normal(0, 0.1)
            frequency = proto.frequency + rng.normal(0, 0.2)
            texture = _grating(
                s,
                np.array([orientation], dtype=np.float32),
                np.array([frequency], dtype=np.float32),
                np.array([rng.uniform(0, 2 * np.pi)], dtype=np.float32),
            )[0]
            patch = cfg.texture_amplitude * texture * region
            images[i] += patch[None] * proto.tint[:, None, None]
            masks[i][region] = k + 1

    images += rng.normal(0, cfg.pixel_noise, images.shape).astype(np.float32)
    return np.clip(images, 0.0, 1.0).astype(np.float32), masks


def shifted_config(cfg: ClassificationTaskConfig) -> ClassificationTaskConfig:
    """A mildly harder variant of ``cfg`` (the CIFAR10.1 analog).

    Jitter grows and the signal amplitude drops slightly — the same classes
    and prototypes, resampled under a small distribution shift.
    """
    return replace(
        cfg,
        texture_amplitude=cfg.texture_amplitude * 0.9,
        distractor_amplitude=cfg.distractor_amplitude * 1.25,
        pixel_noise=cfg.pixel_noise * 1.3,
    )
