"""Common-corruption suite (the CIFAR10-C / ImageNet-C / VOC-C analog).

Sixteen corruptions in the paper's four categories, each with 5 severity
levels.  All functions take a float32 batch ``(N, C, H, W)`` in [0, 1] and
return a corrupted batch in [0, 1]; randomness is deterministic given the
seed.  Implementations follow Hendrycks & Dietterich (2019) scaled to small
images, built on numpy + scipy.ndimage only.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from scipy import ndimage
from scipy.fft import dctn, idctn

from repro.utils.rng import as_rng

CORRUPTION_CATEGORIES: dict[str, tuple[str, ...]] = {
    "noise": ("gaussian_noise", "shot_noise", "impulse_noise", "speckle_noise"),
    "blur": ("defocus_blur", "glass_blur", "motion_blur", "zoom_blur"),
    "weather": ("snow", "frost", "fog", "brightness"),
    "digital": ("contrast", "elastic", "pixelate", "jpeg"),
}

_REGISTRY: dict[str, Callable] = {}


def _register(name: str):
    def deco(fn):
        _REGISTRY[name] = fn
        return fn

    return deco


def available_corruptions() -> list[str]:
    """All corruption names, grouped order: noise, blur, weather, digital."""
    return [name for names in CORRUPTION_CATEGORIES.values() for name in names]


def category_of(name: str) -> str:
    for category, names in CORRUPTION_CATEGORIES.items():
        if name in names:
            return category
    raise KeyError(f"unknown corruption {name!r}")


def corrupt(
    images: np.ndarray,
    name: str,
    severity: int = 3,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Apply corruption ``name`` at ``severity`` (1..5) to a batch."""
    if not 1 <= severity <= 5:
        raise ValueError(f"severity must be in 1..5, got {severity}")
    if images.ndim != 4:
        raise ValueError(f"expected (N, C, H, W) batch, got shape {images.shape}")
    try:
        fn = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown corruption {name!r}; available: {available_corruptions()}"
        ) from None
    out = fn(images.astype(np.float32), severity, as_rng(seed))
    return np.clip(out, 0.0, 1.0).astype(np.float32)


def _sev(values, severity: int):
    return values[severity - 1]


# -------------------------------------------------------------------- noise


@_register("gaussian_noise")
def gaussian_noise(x, severity, rng):
    sigma = _sev([0.04, 0.08, 0.12, 0.17, 0.22], severity)
    return x + rng.normal(0, sigma, x.shape).astype(np.float32)


@_register("shot_noise")
def shot_noise(x, severity, rng):
    lam = _sev([60.0, 25.0, 12.0, 7.0, 4.0], severity)
    return rng.poisson(x * lam).astype(np.float32) / lam


@_register("impulse_noise")
def impulse_noise(x, severity, rng):
    p = _sev([0.02, 0.04, 0.07, 0.11, 0.17], severity)
    out = x.copy()
    flip = rng.random(x.shape) < p
    salt = rng.random(x.shape) < 0.5
    out[flip & salt] = 1.0
    out[flip & ~salt] = 0.0
    return out


@_register("speckle_noise")
def speckle_noise(x, severity, rng):
    sigma = _sev([0.10, 0.18, 0.28, 0.40, 0.55], severity)
    return x + x * rng.normal(0, sigma, x.shape).astype(np.float32)


# --------------------------------------------------------------------- blur


def _disk_kernel(radius: float) -> np.ndarray:
    r = int(np.ceil(radius))
    yy, xx = np.mgrid[-r : r + 1, -r : r + 1]
    kernel = (yy**2 + xx**2 <= radius**2).astype(np.float32)
    return kernel / kernel.sum()


def _spatial_convolve(x: np.ndarray, kernel2d: np.ndarray) -> np.ndarray:
    """Convolve the two spatial axes of an NCHW batch with one 2-D kernel."""
    kernel = kernel2d[None, None]
    return ndimage.convolve(x, kernel, mode="nearest")


@_register("defocus_blur")
def defocus_blur(x, severity, rng):
    radius = _sev([0.8, 1.2, 1.7, 2.3, 3.0], severity)
    return _spatial_convolve(x, _disk_kernel(radius))


@_register("glass_blur")
def glass_blur(x, severity, rng):
    delta, iterations = _sev(
        [(1, 1), (1, 2), (1, 3), (2, 2), (2, 3)], severity
    )
    n, c, h, w = x.shape
    out = x.copy()
    rows = np.arange(h)[:, None]
    cols = np.arange(w)[None, :]
    for _ in range(iterations):
        dy = rng.integers(-delta, delta + 1, size=(n, h, w))
        dx = rng.integers(-delta, delta + 1, size=(n, h, w))
        src_r = np.clip(rows[None] + dy, 0, h - 1)
        src_c = np.clip(cols[None] + dx, 0, w - 1)
        out = out[np.arange(n)[:, None, None, None], np.arange(c)[None, :, None, None],
                  src_r[:, None], src_c[:, None]]
    return ndimage.uniform_filter(out, size=(1, 1, 2, 2), mode="nearest")


def _motion_kernel(length: int, angle: float) -> np.ndarray:
    size = length if length % 2 else length + 1
    kernel = np.zeros((size, size), dtype=np.float32)
    center = size // 2
    ts = np.linspace(-center, center, 4 * size)
    rr = np.clip(np.round(center + ts * np.sin(angle)).astype(int), 0, size - 1)
    cc = np.clip(np.round(center + ts * np.cos(angle)).astype(int), 0, size - 1)
    kernel[rr, cc] = 1.0
    return kernel / kernel.sum()


@_register("motion_blur")
def motion_blur(x, severity, rng):
    length = _sev([3, 3, 5, 5, 7], severity)
    angle = rng.uniform(0, np.pi)
    return _spatial_convolve(x, _motion_kernel(length, angle))


@_register("zoom_blur")
def zoom_blur(x, severity, rng):
    factors = _sev(
        [
            (1.0, 1.04),
            (1.0, 1.04, 1.08),
            (1.0, 1.06, 1.12),
            (1.0, 1.06, 1.12, 1.18),
            (1.0, 1.08, 1.16, 1.24),
        ],
        severity,
    )
    n, c, h, w = x.shape
    acc = np.zeros_like(x)
    for factor in factors:
        if factor == 1.0:
            acc += x
            continue
        zoomed = ndimage.zoom(x, (1, 1, factor, factor), order=1)
        zh, zw = zoomed.shape[2:]
        top, left = (zh - h) // 2, (zw - w) // 2
        acc += zoomed[:, :, top : top + h, left : left + w]
    return acc / len(factors)


# ------------------------------------------------------------------ weather


@_register("snow")
def snow(x, severity, rng):
    density, brightness = _sev(
        [(0.03, 0.5), (0.05, 0.6), (0.08, 0.7), (0.12, 0.75), (0.16, 0.8)], severity
    )
    n, c, h, w = x.shape
    flakes = (rng.random((n, 1, h, w)) < density).astype(np.float32)
    # Streak the flakes along a random direction to look like falling snow.
    streaked = _spatial_convolve(flakes, _motion_kernel(3, rng.uniform(np.pi / 3, 2 * np.pi / 3)))
    streaked = np.clip(streaked * 3.0, 0, 1)
    return x * (1 - brightness * streaked) + brightness * streaked


def _smooth_noise(rng, shape, sigma) -> np.ndarray:
    noise = rng.random(shape).astype(np.float32)
    noise = ndimage.gaussian_filter(noise, sigma=(0, 0, sigma, sigma), mode="wrap")
    lo = noise.min(axis=(2, 3), keepdims=True)
    hi = noise.max(axis=(2, 3), keepdims=True)
    return (noise - lo) / (hi - lo + 1e-8)


@_register("frost")
def frost(x, severity, rng):
    amount = _sev([0.20, 0.30, 0.40, 0.50, 0.60], severity)
    n, c, h, w = x.shape
    crystal = _smooth_noise(rng, (n, 1, h, w), sigma=1.0)
    crystal = (crystal > 0.6).astype(np.float32)
    crystal = ndimage.gaussian_filter(crystal, sigma=(0, 0, 0.6, 0.6))
    frost_color = np.array([0.85, 0.9, 1.0], dtype=np.float32).reshape(1, 3, 1, 1)
    return x * (1 - amount * crystal) + amount * crystal * frost_color


@_register("fog")
def fog(x, severity, rng):
    amount = _sev([0.25, 0.35, 0.45, 0.55, 0.65], severity)
    n, c, h, w = x.shape
    plasma = sum(
        _smooth_noise(rng, (n, 1, h, w), sigma=s) * wgt
        for s, wgt in [(1.0, 0.5), (2.0, 0.3), (4.0, 0.2)]
    )
    return x * (1 - amount) + amount * (0.6 + 0.4 * plasma)


@_register("brightness")
def brightness(x, severity, rng):
    shift = _sev([0.08, 0.14, 0.20, 0.27, 0.35], severity)
    return x + shift


# ------------------------------------------------------------------ digital


@_register("contrast")
def contrast(x, severity, rng):
    factor = _sev([0.75, 0.6, 0.45, 0.3, 0.2], severity)
    mean = x.mean(axis=(2, 3), keepdims=True)
    return (x - mean) * factor + mean


@_register("elastic")
def elastic(x, severity, rng):
    alpha, sigma = _sev(
        [(1.0, 1.6), (1.5, 1.6), (2.0, 1.4), (2.5, 1.2), (3.0, 1.0)], severity
    )
    n, c, h, w = x.shape
    out = np.empty_like(x)
    rows, cols = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
    for i in range(n):
        dy = ndimage.gaussian_filter(rng.normal(0, 1, (h, w)), sigma) * alpha
        dx = ndimage.gaussian_filter(rng.normal(0, 1, (h, w)), sigma) * alpha
        coords = np.stack([rows + dy, cols + dx])
        for ch in range(c):
            out[i, ch] = ndimage.map_coordinates(
                x[i, ch], coords, order=1, mode="reflect"
            )
    return out


@_register("pixelate")
def pixelate(x, severity, rng):
    factor = _sev([1.2, 1.5, 2.0, 2.7, 3.5], severity)
    n, c, h, w = x.shape
    small_h, small_w = max(int(h / factor), 2), max(int(w / factor), 2)
    small = ndimage.zoom(x, (1, 1, small_h / h, small_w / w), order=1)
    return ndimage.zoom(small, (1, 1, h / small.shape[2], w / small.shape[3]), order=0)[
        :, :, :h, :w
    ]


@_register("jpeg")
def jpeg(x, severity, rng):
    """JPEG-style block-DCT quantization (4x4 blocks for small images)."""
    q = _sev([0.06, 0.10, 0.15, 0.22, 0.30], severity)
    block = 4
    n, c, h, w = x.shape
    ph, pw = (-h) % block, (-w) % block
    padded = np.pad(x, ((0, 0), (0, 0), (0, ph), (0, pw)), mode="edge")
    hh, ww = padded.shape[2:]
    blocks = padded.reshape(n, c, hh // block, block, ww // block, block)
    blocks = blocks.transpose(0, 1, 2, 4, 3, 5)  # (..., block, block)
    coeffs = dctn(blocks, axes=(-2, -1), norm="ortho")
    # Quantization step grows with frequency, as in JPEG tables.
    fy, fx = np.meshgrid(np.arange(block), np.arange(block), indexing="ij")
    steps = q * (1.0 + fy + fx)
    coeffs = np.round(coeffs / steps) * steps
    blocks = idctn(coeffs, axes=(-2, -1), norm="ortho")
    blocks = blocks.transpose(0, 1, 2, 4, 3, 5).reshape(n, c, hh, ww)
    return blocks[:, :, :h, :w]
