"""Training-time augmentation.

``random_crop_flip`` is the standard CIFAR recipe (pad-and-crop plus
horizontal flip).  :class:`CorruptionAugmenter` implements the robust
(re-)training protocol of Section 6 / Table 11: each sampled train image is
corrupted with one of the *train-distribution* corruptions — or left clean —
chosen uniformly at random.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.data import corruptions as corr
from repro.utils.rng import as_rng


def random_crop_flip(
    images: np.ndarray,
    rng: np.random.Generator,
    pad: int = 2,
    flip_prob: float = 0.5,
) -> np.ndarray:
    """Random pad-and-crop plus horizontal flip for an NCHW batch."""
    n, c, h, w = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="reflect")
    out = np.empty_like(images)
    tops = rng.integers(0, 2 * pad + 1, size=n)
    lefts = rng.integers(0, 2 * pad + 1, size=n)
    flips = rng.random(n) < flip_prob
    for i in range(n):
        crop = padded[i, :, tops[i] : tops[i] + h, lefts[i] : lefts[i] + w]
        out[i] = crop[:, :, ::-1] if flips[i] else crop
    return out


class CorruptionAugmenter:
    """Corrupt each train image with a uniformly chosen train-set corruption.

    Parameters
    ----------
    corruption_names:
        The train-distribution corruptions (Table 11 left column).
    severity:
        Severity level applied during training (paper uses 3).
    include_clean:
        Whether "no corruption" is one of the uniform choices (it is in the
        paper's protocol).
    """

    def __init__(
        self,
        corruption_names: Sequence[str],
        severity: int = 3,
        include_clean: bool = True,
        rng: np.random.Generator | int | None = None,
    ):
        unknown = set(corruption_names) - set(corr.available_corruptions())
        if unknown:
            raise ValueError(f"unknown corruptions: {sorted(unknown)}")
        self.corruption_names = list(corruption_names)
        self.severity = severity
        self.include_clean = include_clean
        self.rng = as_rng(rng)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        """Return a batch with per-image random corruptions applied."""
        n_choices = len(self.corruption_names) + int(self.include_clean)
        choice = self.rng.integers(0, n_choices, size=len(images))
        out = images.copy()
        for idx, name in enumerate(self.corruption_names):
            selected = choice == idx
            if selected.any():
                out[selected] = corr.corrupt(
                    images[selected], name, self.severity, seed=self.rng
                )
        return out
