"""The CIFAR10.1-analog: a freshly sampled, mildly shifted test set.

Recht et al. (2018) built CIFAR10.1 by re-collecting a CIFAR-like test set;
classifiers drop a few points of accuracy on it despite there being no
explicit corruption.  We reproduce the role of that data set by resampling
the synthetic generator under a slightly harder configuration (lower signal
amplitude, higher jitter) with the *same class prototypes*.
"""

from __future__ import annotations

from repro.data.datasets import Dataset, TaskSuite


def shifted_test_set(suite: TaskSuite) -> Dataset:
    """The shifted resample for ``suite`` (classification tasks only)."""
    return suite.shifted_test_set()
