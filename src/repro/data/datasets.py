"""Dataset containers and the task suites used throughout the experiments.

A :class:`TaskSuite` bundles everything the paper needs from a data set:
nominal train/test splits, the shifted resample (CIFAR10.1 analog), the
corruption suite (CIFAR10-C analog), and the normalization statistics that
define the space in which ℓ∞ noise is injected.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from repro.data import corruptions as corr
from repro.data.synthetic import (
    ClassificationTaskConfig,
    SegmentationTaskConfig,
    generate_classification,
    generate_segmentation,
    shifted_config,
)


@dataclass
class Dataset:
    """Images plus labels (sparse for classification, dense for segmentation)."""

    images: np.ndarray  # (N, C, H, W) float32 in [0, 1]
    labels: np.ndarray  # (N,) or (N, H, W) int64
    name: str = "dataset"

    def __post_init__(self) -> None:
        if self.images.ndim != 4:
            raise ValueError(f"images must be (N, C, H, W), got {self.images.shape}")
        if len(self.images) != len(self.labels):
            raise ValueError(
                f"images/labels length mismatch: {len(self.images)} vs {len(self.labels)}"
            )

    def __len__(self) -> int:
        return len(self.images)

    def subset(self, indices: np.ndarray, name: str | None = None) -> "Dataset":
        return Dataset(self.images[indices], self.labels[indices], name or self.name)

    def map_images(self, fn, name: str | None = None) -> "Dataset":
        """New dataset with ``fn`` applied to the image array."""
        return Dataset(fn(self.images), self.labels, name or self.name)


@dataclass(frozen=True)
class Normalizer:
    """Per-channel standardization fitted on the train split."""

    mean: np.ndarray  # (C,)
    std: np.ndarray  # (C,)

    @classmethod
    def fit(cls, images: np.ndarray) -> "Normalizer":
        mean = images.mean(axis=(0, 2, 3)).astype(np.float32)
        std = (images.std(axis=(0, 2, 3)) + 1e-6).astype(np.float32)
        return cls(mean=mean, std=std)

    def __call__(self, images: np.ndarray) -> np.ndarray:
        shape = (1, -1, 1, 1)
        return (images - self.mean.reshape(shape)) / self.std.reshape(shape)

    def invert(self, images: np.ndarray) -> np.ndarray:
        shape = (1, -1, 1, 1)
        return images * self.std.reshape(shape) + self.mean.reshape(shape)


@dataclass
class TaskSuite:
    """A complete task: nominal splits plus every distribution shift.

    Attributes
    ----------
    config:
        The generative config (classification or segmentation).
    n_train, n_test:
        Split sizes; all splits are generated deterministically on demand
        and cached in process.
    """

    config: ClassificationTaskConfig | SegmentationTaskConfig
    n_train: int = 2000
    n_test: int = 1000
    name: str = "synth"
    _cache: dict = field(default_factory=dict, repr=False)

    @property
    def is_segmentation(self) -> bool:
        return isinstance(self.config, SegmentationTaskConfig)

    @property
    def num_classes(self) -> int:
        if self.is_segmentation:
            return self.config.num_classes + 1  # + background
        return self.config.num_classes

    @property
    def input_shape(self) -> tuple[int, int, int]:
        return (3, self.config.image_size, self.config.image_size)

    def _generate(self, split: str, n: int) -> Dataset:
        key = (split, n)
        if key not in self._cache:
            if self.is_segmentation:
                images, labels = generate_segmentation(self.config, n, split)
            else:
                images, labels = generate_classification(self.config, n, split)
            self._cache[key] = Dataset(images, labels, f"{self.name}/{split}")
        return self._cache[key]

    def train_set(self) -> Dataset:
        return self._generate("train", self.n_train)

    def test_set(self) -> Dataset:
        return self._generate("test", self.n_test)

    def shifted_test_set(self) -> Dataset:
        """The CIFAR10.1-analog: a resample under a mild generative shift."""
        key = ("shifted-v2", self.n_test)
        if key not in self._cache:
            if self.is_segmentation:
                raise NotImplementedError("shifted split is defined for classification")
            cfg = shifted_config(self.config)
            images, labels = generate_classification(
                cfg, self.n_test, "shifted", jitter_scale=1.3
            )
            self._cache[key] = Dataset(images, labels, f"{self.name}/shifted")
        return self._cache[key]

    def corrupted_test_set(self, corruption: str, severity: int = 3) -> Dataset:
        """Test split with one corruption applied (the -C suite analog)."""
        key = ("corrupted", corruption, severity, self.n_test)
        if key not in self._cache:
            base = self.test_set()
            images = corr.corrupt(
                base.images, corruption, severity, seed=self.config.seed + severity
            )
            self._cache[key] = Dataset(
                images, base.labels, f"{self.name}/{corruption}@{severity}"
            )
        return self._cache[key]

    def normalizer(self) -> Normalizer:
        if "normalizer" not in self._cache:
            self._cache["normalizer"] = Normalizer.fit(self.train_set().images)
        return self._cache["normalizer"]


@lru_cache(maxsize=None)
def cifar_like(
    seed: int = 0,
    n_train: int = 2000,
    n_test: int = 1000,
    image_size: int = 16,
    num_classes: int = 10,
) -> TaskSuite:
    """The CIFAR10 stand-in: 10 classes of small textured images."""
    cfg = ClassificationTaskConfig(
        num_classes=num_classes, image_size=image_size, seed=seed
    )
    return TaskSuite(cfg, n_train, n_test, name="synth-cifar")


@lru_cache(maxsize=None)
def imagenet_like(
    seed: int = 0,
    n_train: int = 3000,
    n_test: int = 1000,
    image_size: int = 24,
    num_classes: int = 20,
) -> TaskSuite:
    """The ImageNet stand-in: more classes at higher resolution."""
    cfg = ClassificationTaskConfig(
        num_classes=num_classes,
        image_size=image_size,
        seed=seed + 7,
        distractor_amplitude=0.22,
    )
    return TaskSuite(cfg, n_train, n_test, name="synth-imagenet")


@lru_cache(maxsize=None)
def voc_like(
    seed: int = 0,
    n_train: int = 800,
    n_test: int = 300,
    image_size: int = 24,
    num_classes: int = 5,
) -> TaskSuite:
    """The Pascal-VOC stand-in: dense per-pixel labelling."""
    cfg = SegmentationTaskConfig(
        num_classes=num_classes, image_size=image_size, seed=seed + 13
    )
    return TaskSuite(cfg, n_train, n_test, name="synth-voc")
