"""Minibatch iteration."""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.utils.rng import as_rng


def iterate_minibatches(
    images: np.ndarray,
    labels: np.ndarray,
    batch_size: int,
    rng: np.random.Generator | int | None = None,
    shuffle: bool = True,
    augment: Callable[[np.ndarray], np.ndarray] | None = None,
    drop_last: bool = False,
) -> Iterator[tuple[np.ndarray, np.ndarray]]:
    """Yield ``(images, labels)`` minibatches, optionally shuffled/augmented."""
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    n = len(images)
    order = np.arange(n)
    if shuffle:
        as_rng(rng).shuffle(order)
    for start in range(0, n, batch_size):
        idx = order[start : start + batch_size]
        if drop_last and len(idx) < batch_size:
            return
        batch = images[idx]
        if augment is not None:
            batch = augment(batch)
        yield batch, labels[idx]
