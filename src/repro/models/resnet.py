"""Residual networks (He et al., 2016) for small images.

``CifarResNet`` follows the CIFAR variant: a 3x3 stem, three stages of
``n`` basic blocks with channel widths ``(w, 2w, 4w)``, stride-2 stage
transitions, global average pooling, and a linear classifier.  Depth is
``6n + 2``, so ``n = 3, 9, 18`` gives ResNet20/56/110.  ``resnet18``
approximates the ImageNet variant with four stages of two blocks.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.utils.rng import as_rng


class BasicBlock(nn.Module):
    """conv-bn-relu-conv-bn plus a (projected) identity shortcut."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        self.conv1 = nn.Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.bn1 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x):
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        return (out + self.shortcut(x)).relu()


class CifarResNet(nn.Module):
    """CIFAR-style ResNet of depth ``6n + 2`` with base width ``w``."""

    def __init__(
        self,
        num_blocks: int,
        num_classes: int = 10,
        base_width: int = 8,
        in_channels: int = 3,
        stage_strides: tuple[int, ...] = (1, 2, 2),
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        rng = as_rng(rng)
        widths = [base_width * (2**i) for i in range(len(stage_strides))]
        self.stem = nn.Conv2d(in_channels, widths[0], 3, padding=1, bias=False, rng=rng)
        self.bn = nn.BatchNorm2d(widths[0])
        stages = []
        channels = widths[0]
        for width, stage_stride in zip(widths, stage_strides):
            for i in range(num_blocks):
                stride = stage_stride if i == 0 else 1
                stages.append(BasicBlock(channels, width, stride=stride, rng=rng))
                channels = width
        self.stages = nn.Sequential(*stages)
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(channels, num_classes, rng=rng)
        self.depth = 6 * num_blocks + 2

    def forward(self, x):
        out = self.bn(self.stem(x)).relu()
        out = self.stages(out)
        return self.fc(self.pool(out))


def resnet20(num_classes: int = 10, base_width: int = 8, rng=None, **kwargs) -> CifarResNet:
    """ResNet20 family member (n = 3)."""
    return CifarResNet(3, num_classes, base_width, rng=rng, **kwargs)


def resnet56(num_classes: int = 10, base_width: int = 8, rng=None, **kwargs) -> CifarResNet:
    """ResNet56 family member (n = 9)."""
    return CifarResNet(9, num_classes, base_width, rng=rng, **kwargs)


def resnet110(num_classes: int = 10, base_width: int = 8, rng=None, **kwargs) -> CifarResNet:
    """ResNet110 family member (n = 18)."""
    return CifarResNet(18, num_classes, base_width, rng=rng, **kwargs)


def resnet18(num_classes: int = 20, base_width: int = 8, rng=None, **kwargs) -> CifarResNet:
    """ImageNet-style ResNet18 analog: four stages of two blocks."""
    return CifarResNet(
        2, num_classes, base_width, stage_strides=(1, 2, 2, 2), rng=rng, **kwargs
    )
