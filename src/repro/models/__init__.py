"""Scaled-down members of the paper's architecture families.

The paper evaluates ResNet20/56/110, VGG16, DenseNet22, and WRN16-8 on
CIFAR10; ResNet18/101 on ImageNet; and DeeplabV3-ResNet50 on VOC.  We keep
the *family structure* (depth pattern, residual/dense/plain connectivity,
width multipliers, encoder–decoder segmentation head) but shrink channel
counts so the full prune–retrain study runs on CPU.
"""

from repro.models.mlp import MLP
from repro.models.resnet import CifarResNet, resnet110, resnet18, resnet20, resnet56
from repro.models.vgg import VGG, vgg16
from repro.models.densenet import DenseNet, densenet22
from repro.models.wideresnet import WideResNet, wrn16_8
from repro.models.segnet import SegNet, deeplab_small
from repro.models.registry import (
    available_models,
    build_model,
    register_model,
    unregister_model,
)

__all__ = [
    "MLP",
    "CifarResNet",
    "resnet20",
    "resnet56",
    "resnet110",
    "resnet18",
    "VGG",
    "vgg16",
    "DenseNet",
    "densenet22",
    "WideResNet",
    "wrn16_8",
    "SegNet",
    "deeplab_small",
    "build_model",
    "register_model",
    "unregister_model",
    "available_models",
]
