"""Name-based model construction, mirroring the paper's network zoo."""

from __future__ import annotations

from typing import Callable

from repro.nn.module import Module

_REGISTRY: dict[str, Callable[..., Module]] = {}


def register_model(name: str, factory: Callable[..., Module]) -> None:
    """Register ``factory`` under ``name`` (overwrites an existing entry)."""
    _REGISTRY[name] = factory


def unregister_model(name: str) -> None:
    """Remove ``name`` from the registry (no-op if absent).

    Registry-wide sweeps (``oracle_registry_plan_parity``, zoo builds)
    iterate :func:`available_models`, so transient registrations must be
    withdrawn once their caller is done with them.
    """
    _REGISTRY.pop(name, None)


def available_models() -> list[str]:
    """Names of all registered model factories."""
    return sorted(_REGISTRY)


def build_model(name: str, **kwargs) -> Module:
    """Instantiate a registered model by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None
    return factory(**kwargs)


def _register_defaults() -> None:
    from repro.models import densenet, mlp, resnet, segnet, vgg, wideresnet

    register_model("resnet20", resnet.resnet20)
    register_model("resnet56", resnet.resnet56)
    register_model("resnet110", resnet.resnet110)
    register_model("resnet18", resnet.resnet18)
    register_model("vgg16", vgg.vgg16)
    register_model("densenet22", densenet.densenet22)
    register_model("wrn16_8", wideresnet.wrn16_8)
    register_model("deeplab_small", segnet.deeplab_small)
    def _mlp_factory(num_classes=10, in_features=48, rng=None, base_width=None, **kw):
        hidden = (16 * base_width,) * 2 if base_width else (64, 64)
        return mlp.MLP(in_features, hidden=hidden, num_classes=num_classes, rng=rng, **kw)

    register_model("mlp", _mlp_factory)


_register_defaults()
