"""Encoder–decoder segmentation network (DeeplabV3-ResNet50 analog).

A compact encoder (residual blocks with two stride-2 reductions) followed
by a decoder that upsamples back to input resolution and predicts a class
per pixel.  Plays the role of DeeplabV3 on Pascal VOC in the paper's
segmentation experiments (Table 8, Figs. 11/37/47).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.resnet import BasicBlock
from repro.utils.rng import as_rng


class SegNet(nn.Module):
    """Residual encoder + upsampling decoder, logits shape (N, K, H, W)."""

    def __init__(
        self,
        num_classes: int = 6,
        base_width: int = 8,
        in_channels: int = 3,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        rng = as_rng(rng)
        w = base_width
        self.stem = nn.Conv2d(in_channels, w, 3, padding=1, bias=False, rng=rng)
        self.bn = nn.BatchNorm2d(w)
        self.encoder = nn.Sequential(
            BasicBlock(w, w, rng=rng),
            BasicBlock(w, 2 * w, stride=2, rng=rng),
            BasicBlock(2 * w, 4 * w, stride=2, rng=rng),
            BasicBlock(4 * w, 4 * w, rng=rng),
        )
        self.decoder = nn.Sequential(
            nn.UpsampleNearest2d(2),
            nn.Conv2d(4 * w, 2 * w, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(2 * w),
            nn.ReLU(),
            nn.UpsampleNearest2d(2),
            nn.Conv2d(2 * w, w, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(w),
            nn.ReLU(),
        )
        self.classifier = nn.Conv2d(w, num_classes, 1, rng=rng)

    def forward(self, x):
        h, w = x.shape[2:]
        if h % 4 or w % 4:
            raise ValueError(
                f"SegNet needs spatial dims divisible by 4 (two stride-2 "
                f"stages + two 2x upsamples), got {h}x{w}"
            )
        out = self.bn(self.stem(x)).relu()
        out = self.encoder(out)
        out = self.decoder(out)
        return self.classifier(out)


def deeplab_small(num_classes: int = 6, base_width: int = 8, rng=None, **kwargs) -> SegNet:
    """DeeplabV3 family analog for the synthetic VOC task."""
    return SegNet(num_classes, base_width, rng=rng, **kwargs)
