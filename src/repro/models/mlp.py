"""Small multi-layer perceptron, used in tests and fast examples."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.utils.rng import as_rng


class MLP(nn.Module):
    """Flatten + stacked Linear/ReLU layers."""

    def __init__(
        self,
        in_features: int,
        hidden: tuple[int, ...] = (64, 64),
        num_classes: int = 10,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        rng = as_rng(rng)
        layers: list[nn.Module] = [nn.Flatten()]
        features = in_features
        for width in hidden:
            layers.append(nn.Linear(features, width, rng=rng))
            layers.append(nn.ReLU())
            features = width
        layers.append(nn.Linear(features, num_classes, rng=rng))
        self.net = nn.Sequential(*layers)

    def forward(self, x):
        return self.net(x)
