"""VGG-style plain convolutional networks (Simonyan & Zisserman, 2015).

``vgg16`` keeps VGG16's 13-conv/plain-feedforward structure with a
batch-norm after each conv (the common CIFAR adaptation) but shrinks the
channel progression by a configurable base width.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.utils.rng import as_rng

# VGG16 layout: channel multiplier per conv, "M" = 2x2 max pool.
VGG16_LAYOUT: tuple = (1, 1, "M", 2, 2, "M", 4, 4, 4, "M", 8, 8, 8, "M", 8, 8, 8)


class VGG(nn.Module):
    """Plain conv network defined by a layout of width multipliers."""

    def __init__(
        self,
        layout: tuple = VGG16_LAYOUT,
        num_classes: int = 10,
        base_width: int = 8,
        in_channels: int = 3,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        rng = as_rng(rng)
        layers: list[nn.Module] = []
        channels = in_channels
        for item in layout:
            if item == "M":
                layers.append(nn.MaxPool2d(2))
                continue
            width = int(item) * base_width
            layers.append(nn.Conv2d(channels, width, 3, padding=1, bias=False, rng=rng))
            layers.append(nn.BatchNorm2d(width))
            layers.append(nn.ReLU())
            channels = width
        self.features = nn.Sequential(*layers)
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(channels, num_classes, rng=rng)

    def forward(self, x):
        return self.fc(self.pool(self.features(x)))


def vgg16(num_classes: int = 10, base_width: int = 8, rng=None, **kwargs) -> VGG:
    """VGG16 family member."""
    return VGG(VGG16_LAYOUT, num_classes, base_width, rng=rng, **kwargs)
