"""Densely connected networks (Huang et al., 2017).

DenseNet22 without bottlenecks: three dense blocks of ``n`` 3x3 conv
layers, each consuming the concatenation of all previous feature maps and
emitting ``growth_rate`` channels; transitions halve channels and spatial
size.  Depth 22 corresponds to ``n = 6``; the scaled default keeps the
three-block structure with a smaller ``n`` and growth rate.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.autograd import ops
from repro.utils.rng import as_rng


class DenseLayer(nn.Module):
    """BN-ReLU-Conv producing ``growth_rate`` new channels."""

    def __init__(self, in_channels: int, growth_rate: int, rng=None):
        super().__init__()
        self.bn = nn.BatchNorm2d(in_channels)
        self.conv = nn.Conv2d(in_channels, growth_rate, 3, padding=1, bias=False, rng=rng)

    def forward(self, x):
        return self.conv(self.bn(x).relu())


class DenseBlock(nn.Module):
    def __init__(self, num_layers: int, in_channels: int, growth_rate: int, rng=None):
        super().__init__()
        self.layers = nn.ModuleList(
            DenseLayer(in_channels + i * growth_rate, growth_rate, rng=rng)
            for i in range(num_layers)
        )
        self.out_channels = in_channels + num_layers * growth_rate

    def forward(self, x):
        for layer in self.layers:
            x = ops.concatenate([x, layer(x)], axis=1)
        return x


class Transition(nn.Module):
    """1x1 conv halving channels followed by 2x2 average pooling."""

    def __init__(self, in_channels: int, rng=None):
        super().__init__()
        self.out_channels = in_channels // 2
        self.bn = nn.BatchNorm2d(in_channels)
        self.conv = nn.Conv2d(in_channels, self.out_channels, 1, bias=False, rng=rng)
        self.pool = nn.AvgPool2d(2)

    def forward(self, x):
        return self.pool(self.conv(self.bn(x).relu()))


class DenseNet(nn.Module):
    """Three-dense-block network with transitions."""

    def __init__(
        self,
        layers_per_block: int = 3,
        growth_rate: int = 4,
        num_classes: int = 10,
        in_channels: int = 3,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        rng = as_rng(rng)
        channels = 2 * growth_rate
        self.stem = nn.Conv2d(in_channels, channels, 3, padding=1, bias=False, rng=rng)
        blocks: list[nn.Module] = []
        for i in range(3):
            block = DenseBlock(layers_per_block, channels, growth_rate, rng=rng)
            blocks.append(block)
            channels = block.out_channels
            if i < 2:
                transition = Transition(channels, rng=rng)
                blocks.append(transition)
                channels = transition.out_channels
        self.blocks = nn.Sequential(*blocks)
        self.bn = nn.BatchNorm2d(channels)
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(channels, num_classes, rng=rng)

    def forward(self, x):
        out = self.blocks(self.stem(x))
        return self.fc(self.pool(self.bn(out).relu()))


def densenet22(
    num_classes: int = 10,
    growth_rate: int | None = None,
    base_width: int = 4,
    rng=None,
    **kwargs,
) -> DenseNet:
    """DenseNet22 family member (three blocks, no bottleneck).

    ``base_width`` doubles as the growth rate so DenseNet scales with the
    same knob as the other families.
    """
    return DenseNet(3, growth_rate or base_width, num_classes, rng=rng, **kwargs)
