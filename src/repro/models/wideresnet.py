"""Wide residual networks (Zagoruyko & Komodakis, 2016).

WRN16-8: pre-activation residual blocks, depth 16 (two blocks per group)
and widen factor 8.  The wide-and-shallow profile is the trait the paper's
noise-robustness findings single out (Appendix D.1), so we preserve the
depth/width ratio while shrinking the absolute base width.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.utils.rng import as_rng


class PreActBlock(nn.Module):
    """BN-ReLU-Conv x2 pre-activation residual block."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1, rng=None):
        super().__init__()
        self.bn1 = nn.BatchNorm2d(in_channels)
        self.conv1 = nn.Conv2d(
            in_channels, out_channels, 3, stride=stride, padding=1, bias=False, rng=rng
        )
        self.bn2 = nn.BatchNorm2d(out_channels)
        self.conv2 = nn.Conv2d(out_channels, out_channels, 3, padding=1, bias=False, rng=rng)
        self.needs_projection = stride != 1 or in_channels != out_channels
        if self.needs_projection:
            self.shortcut = nn.Conv2d(
                in_channels, out_channels, 1, stride=stride, bias=False, rng=rng
            )
        else:
            self.shortcut = nn.Identity()

    def forward(self, x):
        pre = self.bn1(x).relu()
        out = self.conv1(pre)
        out = self.conv2(self.bn2(out).relu())
        residual = self.shortcut(pre if self.needs_projection else x)
        return out + residual


class WideResNet(nn.Module):
    """WRN-(6n+4)-k: three groups of ``n`` pre-activation blocks, width ``k``."""

    def __init__(
        self,
        num_blocks: int = 2,
        widen_factor: int = 4,
        num_classes: int = 10,
        base_width: int = 4,
        in_channels: int = 3,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        rng = as_rng(rng)
        widths = [base_width * widen_factor * (2**i) for i in range(3)]
        self.stem = nn.Conv2d(in_channels, base_width, 3, padding=1, bias=False, rng=rng)
        blocks: list[nn.Module] = []
        channels = base_width
        for group, width in enumerate(widths):
            for i in range(num_blocks):
                stride = 2 if group > 0 and i == 0 else 1
                blocks.append(PreActBlock(channels, width, stride=stride, rng=rng))
                channels = width
        self.blocks = nn.Sequential(*blocks)
        self.bn = nn.BatchNorm2d(channels)
        self.pool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(channels, num_classes, rng=rng)
        self.depth = 6 * num_blocks + 4

    def forward(self, x):
        out = self.blocks(self.stem(x))
        return self.fc(self.pool(self.bn(out).relu()))


def wrn16_8(num_classes: int = 10, base_width: int = 4, rng=None, **kwargs) -> WideResNet:
    """WRN16-8 family member (depth 16, wide groups)."""
    return WideResNet(2, 4, num_classes, base_width, rng=rng, **kwargs)
