"""Structured failure records: per-cell failures and grid manifests.

When a grid runs with ``on_error="collect"`` the surviving cells complete
and every dead cell becomes one :class:`CellFailure` — what failed (the
cell key and an optional caller-supplied payload that can reconstruct the
cell), how it failed (exception / crash / timeout / dependency, with the
remote traceback), and how hard the engine tried (attempt count,
retryable classification).  The grid's failures are persisted as one
:class:`FailureManifest` JSON file next to the artifacts it failed to
produce, which is both the post-mortem record and the input to
``python -m repro zoo --resume <manifest>``.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Iterable

#: ``CellFailure.kind`` values.
KIND_EXCEPTION = "exception"  # fn raised inside the worker
KIND_CRASH = "crash"  # worker process died without reporting a result
KIND_TIMEOUT = "timeout"  # cell exceeded its deadline; worker was replaced
KIND_DEPENDENCY = "dependency"  # an upstream cell (e.g. the parent) failed
KIND_QUARANTINE = "quarantine"  # task burned its lease budget on the queue


def _wall_stamp() -> str:
    return time.strftime("%Y-%m-%dT%H:%M:%S")


@dataclass(frozen=True)
class CellFailure:
    """One grid cell that exhausted its retry budget."""

    key: str
    index: int
    kind: str
    error_type: str
    message: str
    attempts: int = 1
    remote_traceback: str = ""
    retryable: bool = False
    payload: dict[str, Any] | None = None
    #: Wall-clock time the failure was recorded (auto-stamped); lets a
    #: post-mortem line failures up against the run ledger, and lets a
    #: manifest accumulated across retries keep only the latest record.
    timestamp: str = ""

    def __post_init__(self):
        if not self.timestamp:
            object.__setattr__(self, "timestamp", _wall_stamp())

    def describe(self) -> str:
        """One human line: ``key: kind ErrorType: message (n attempts)``."""
        return (
            f"{self.key}: {self.kind} {self.error_type}: {self.message} "
            f"({self.attempts} attempt{'s' if self.attempts != 1 else ''})"
        )

    def with_payload(self, payload: dict[str, Any] | None) -> "CellFailure":
        import dataclasses

        return dataclasses.replace(self, payload=payload)


@dataclass
class FailureManifest:
    """All failures of one degraded grid run, JSON-persistable."""

    label: str
    failures: list[CellFailure] = field(default_factory=list)
    total_cells: int = 0
    scale_digest: str | None = None
    created: str = ""

    def __post_init__(self):
        if not self.created:
            self.created = time.strftime("%Y-%m-%dT%H:%M:%S")

    def __len__(self) -> int:
        return len(self.failures)

    def __iter__(self):
        return iter(self.failures)

    @property
    def keys(self) -> list[str]:
        return [f.key for f in self.failures]

    def extend(self, failures: Iterable[CellFailure]) -> None:
        self.failures.extend(failures)

    def summary(self) -> str:
        kinds: dict[str, int] = {}
        for f in self.failures:
            kinds[f.kind] = kinds.get(f.kind, 0) + 1
        breakdown = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        return (
            f"{self.label}: {len(self.failures)}/{self.total_cells} cells failed"
            + (f" ({breakdown})" if breakdown else "")
        )

    # ------------------------------------------------------- persistence
    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "created": self.created,
            "scale_digest": self.scale_digest,
            "total_cells": self.total_cells,
            "failures": [asdict(f) for f in self.failures],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2)

    @classmethod
    def from_dict(cls, data: dict) -> "FailureManifest":
        return cls(
            label=str(data.get("label", "?")),
            created=str(data.get("created", "")),
            scale_digest=data.get("scale_digest"),
            total_cells=int(data.get("total_cells", 0)),
            failures=[CellFailure(**f) for f in data.get("failures", [])],
        )

    def deduped(self) -> list[CellFailure]:
        """Entries collapsed on ``(key, kind)``, keeping the latest record.

        A cell retried across several degraded rounds (or merged from
        several manifests) accumulates one entry per round; only the most
        recent one matters for resume and post-mortems.  Order follows the
        first occurrence of each ``(key, kind)``.
        """
        latest: dict[tuple[str, str], CellFailure] = {}
        for failure in self.failures:
            latest[(failure.key, failure.kind)] = failure
        return list(latest.values())

    def save(self, path: str | Path) -> Path:
        """Atomically publish this manifest to ``path`` (JSON).

        Identical ``(key, kind)`` entries accumulated across retries are
        deduplicated (latest wins) before the write.
        """
        from repro.parallel.locks import atomic_write

        self.failures = self.deduped()
        path = Path(path)
        with atomic_write(path) as tmp:
            tmp.write_text(self.to_json(), encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "FailureManifest":
        path = Path(path)
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise
        except Exception as exc:
            raise ValueError(f"unreadable failure manifest {path}: {exc}") from exc
        if not isinstance(data, dict) or "failures" not in data:
            raise ValueError(f"{path} is not a failure manifest")
        return cls.from_dict(data)


def default_manifest_path(directory: str | Path, label: str) -> Path:
    """Where a grid persists its manifest: ``failures-<label>-<stamp>.json``.

    The pid suffix keeps two grids degrading in the same second (e.g.
    racing builders) from clobbering each other's manifests.
    """
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in label)
    stamp = time.strftime("%Y%m%d-%H%M%S")
    return Path(directory) / f"failures-{safe}-{stamp}-{os.getpid()}.json"
