"""Retry policy: transient-failure classification and seeded backoff.

Large sweep grids hit two failure families.  *Transient* faults — a
worker OOM-killed by the OS, a filesystem hiccup, a lock starved past
its timeout, an archive torn by a crashed publisher — succeed when the
cell is simply run again, so the execution engine retries them with
exponential backoff.  *Deterministic* faults — a ``ValueError`` from a
bad config, a shape mismatch — fail identically on every attempt, so
retrying them only burns hours; they go straight to the failure
manifest.

Backoff jitter is **seeded per (cell key, attempt)** rather than drawn
from a global RNG: two runs of the same degraded grid sleep the same
schedule, so chaos tests and resumed runs are reproducible.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
from dataclasses import dataclass

MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"
CELL_TIMEOUT_ENV = "REPRO_CELL_TIMEOUT"

#: Exception *type names* treated as transient.  Names, not classes: in
#: parallel mode the parent only sees the worker's ``type(exc).__name__``
#: (the traceback travels as text), so classification must work on the
#: wire format.  Subclasses of ``OSError`` raised in-process are caught
#: by :func:`is_retryable` via ``isinstance`` as well.
RETRYABLE_TYPES: set[str] = {
    # OS-level transients (the worker's process/filesystem misbehaved).
    "OSError",
    "IOError",
    "BlockingIOError",
    "InterruptedError",
    "BrokenPipeError",
    "ConnectionError",
    "ConnectionResetError",
    "ConnectionRefusedError",
    "TimeoutError",
    # Cache-coordination transients.
    "LockTimeout",
    # Corrupt-archive signatures: a torn or half-published ``.npz`` read
    # concurrently with its re-publication.  The zoo treats these as
    # cache misses, so a retry lands on a valid archive.
    "BadZipFile",
    "EOFError",
    "error",  # zlib.error's bare name, raised by truncated compressed blocks
    # Fault-injection harness (repro.resilience.chaos).
    "ChaosError",
    # A repackaged worker failure whose original type was lost.
    "WorkerError",
}

#: Failure kinds that are always retryable regardless of exception type:
#: a crashed or hung worker says nothing deterministic about the cell.
RETRYABLE_KINDS = ("crash", "timeout")


def register_retryable(type_name: str) -> None:
    """Add an exception type name to the transient set (process-wide)."""
    RETRYABLE_TYPES.add(type_name)


def is_retryable_type(type_name: str) -> bool:
    """Classify a failure by exception type *name* (the wire format)."""
    return type_name in RETRYABLE_TYPES


def is_retryable(exc: BaseException) -> bool:
    """Classify an in-process exception instance.

    ``isinstance`` catches ``OSError`` subclasses whose names are not in
    the table; the name check catches cross-module types (``ChaosError``,
    ``BadZipFile``) without importing them here.
    """
    if isinstance(exc, (OSError, EOFError)):
        return True
    return is_retryable_type(type(exc).__name__)


def stable_seed(*parts: object) -> int:
    """A deterministic 64-bit seed from arbitrary string-able parts.

    ``hash()`` is salted per process (PYTHONHASHSEED), so anything that
    must agree across workers — backoff jitter, chaos decisions — derives
    from this digest instead.
    """
    text = "\x1f".join(str(p) for p in parts)
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "little"
    )


def stable_unit(*parts: object) -> float:
    """A deterministic float in [0, 1) keyed by ``parts``."""
    return (stable_seed(*parts) % (2**53)) / float(2**53)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, per-cell jitter.

    ``max_retries`` counts *additional* attempts after the first: 2 means
    a cell may run three times before it lands in the failure manifest.
    """

    max_retries: int = 2
    base_delay: float = 0.1
    multiplier: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.5  # ± fraction of the nominal delay

    def __post_init__(self):
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff(self, attempt: int, key: str = "") -> float:
        """Sleep before retry number ``attempt`` (1-based) of cell ``key``.

        Exponential in the attempt, capped at ``max_delay``, then spread
        by ``± jitter`` using a unit draw seeded on (key, attempt) so the
        schedule is a pure function of the cell's identity.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        delay = min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)
        if self.jitter and delay > 0:
            spread = 2.0 * stable_unit("backoff", key, attempt) - 1.0  # [-1, 1)
            delay *= 1.0 + self.jitter * spread
        return max(delay, 0.0)

    def with_max_retries(self, max_retries: int | None) -> "RetryPolicy":
        """This policy with ``max_retries`` overridden (``None`` keeps it)."""
        if max_retries is None:
            return self
        return dataclasses.replace(self, max_retries=max_retries)


def resolve_max_retries(value: int | None = None, default: int = 2) -> int:
    """Retry budget: explicit arg > ``REPRO_MAX_RETRIES`` > ``default``."""
    if value is not None:
        if value < 0:
            raise ValueError(f"max_retries must be >= 0, got {value}")
        return int(value)
    raw = os.environ.get(MAX_RETRIES_ENV, "").strip()
    if raw:
        try:
            parsed = int(raw)
        except ValueError:
            raise ValueError(
                f"{MAX_RETRIES_ENV} must be an integer, got {raw!r}"
            ) from None
        if parsed < 0:
            raise ValueError(f"{MAX_RETRIES_ENV} must be >= 0, got {parsed}")
        return parsed
    return default


def resolve_cell_timeout(value: float | None = None) -> float | None:
    """Per-cell deadline in seconds: explicit arg > ``REPRO_CELL_TIMEOUT``
    > ``None`` (no deadline).  Non-positive values mean "no deadline"."""
    if value is None:
        raw = os.environ.get(CELL_TIMEOUT_ENV, "").strip()
        if not raw:
            return None
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(
                f"{CELL_TIMEOUT_ENV} must be a number, got {raw!r}"
            ) from None
    return None if value <= 0 else float(value)
