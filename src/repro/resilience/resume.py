"""Resumable runs: recompute only the failed cells of a degraded grid.

A degraded ``build_zoo`` persists a :class:`FailureManifest` whose
entries carry a ``payload`` sufficient to reconstruct each failed cell
(``{"kind": "zoo", "task": ..., "model": ..., "method": ...,
"repetition": ..., "robust": ...}``).  :func:`resume_zoo` turns those
payloads back into :class:`~repro.experiments.zoo.ZooSpec`\\ s and
re-dispatches *only them* against the warm cache — surviving cells were
already published, so their parents resolve as cache hits and the resume
cost is exactly the failed work.

A degraded run resumed degraded produces a *second* manifest, so every
entry point here also accepts several manifests at once: their specs are
merged and deduplicated, and ``python -m repro zoo --resume a.json
--resume b.json`` replays the union in one pass instead of forcing the
user to pick one file (and lose the other's cells).
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

from repro.resilience.failures import FailureManifest


def load_manifest(manifest: FailureManifest | str | Path) -> FailureManifest:
    """Accept a manifest object or a path to one on disk."""
    if isinstance(manifest, FailureManifest):
        return manifest
    return FailureManifest.load(manifest)


def load_manifests(
    manifests: FailureManifest | str | Path | Sequence,
) -> list[FailureManifest]:
    """Normalize one-or-many manifests (objects or paths) to a list."""
    if isinstance(manifests, (FailureManifest, str, Path)):
        manifests = [manifests]
    return [load_manifest(m) for m in manifests]


def zoo_specs_from_manifest(manifest) -> list:
    """The failed :class:`ZooSpec`\\ s recorded in one or several manifests
    (merged, deduplicated, order-preserving).  Entries without a zoo
    payload are skipped."""
    from repro.experiments.zoo import ZooSpec

    specs: dict = {}
    for loaded in load_manifests(manifest):
        for failure in loaded.failures:
            payload = failure.payload or {}
            if payload.get("kind") != "zoo":
                continue
            spec = ZooSpec(
                task_name=payload["task"],
                model_name=payload["model"],
                method_name=payload.get("method"),
                repetition=int(payload.get("repetition", 0)),
                robust=bool(payload.get("robust", False)),
            )
            specs.setdefault(spec, None)
    return list(specs)


def _check_scale(manifests: Iterable[FailureManifest], scale) -> None:
    for manifest in manifests:
        if manifest.scale_digest and manifest.scale_digest != scale.digest():
            raise ValueError(
                f"manifest {manifest.label!r} was recorded at scale digest "
                f"{manifest.scale_digest}, not {scale.digest()}: resuming would "
                "recompute against a different cache namespace"
            )


def resume_zoo(
    manifest,
    scale,
    jobs: int | None = None,
    *,
    on_error: str = "collect",
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    start_method: str | None = None,
    executor: str | None = None,
    queue_dir: str | Path | None = None,
):
    """Re-dispatch the failed cells of one or several zoo build manifests.

    ``manifest`` may be a single manifest (object or path) or a sequence
    of them — a degraded run resumed degraded leaves a second manifest,
    and passing both replays the merged, deduplicated spec union.  Only
    the manifests' cells are passed to ``build_zoo``; everything that
    survived the original runs is untouched (its artifacts satisfy the
    dependency probes as cache hits, visible in the run ledger's
    ``zoo.cache_hit`` counter).  Raises ``ValueError`` when no manifest
    has a resumable zoo cell or any was produced under a different
    experiment scale (its artifacts would not line up with the cache).
    """
    from repro import observe
    from repro.experiments.zoo import build_zoo

    manifests = load_manifests(manifest)
    _check_scale(manifests, scale)
    specs = zoo_specs_from_manifest(manifests)
    labels = ", ".join(m.label for m in manifests)
    if not specs:
        total = sum(len(m) for m in manifests)
        raise ValueError(
            f"manifest(s) {labels!r} have no resumable zoo cells "
            f"({total} failures recorded)"
        )
    observe.event(
        "resume",
        label=labels,
        manifests=len(manifests),
        cells=len(specs),
        created=manifests[0].created,
    )
    return build_zoo(
        specs,
        scale,
        jobs=jobs,
        start_method=start_method,
        on_error=on_error,
        max_retries=max_retries,
        cell_timeout=cell_timeout,
        executor=executor,
        queue_dir=queue_dir,
    )
