"""Resumable runs: recompute only the failed cells of a degraded grid.

A degraded ``build_zoo`` persists a :class:`FailureManifest` whose
entries carry a ``payload`` sufficient to reconstruct each failed cell
(``{"kind": "zoo", "task": ..., "model": ..., "method": ...,
"repetition": ..., "robust": ...}``).  :func:`resume_zoo` turns those
payloads back into :class:`~repro.experiments.zoo.ZooSpec`\\ s and
re-dispatches *only them* against the warm cache — surviving cells were
already published, so their parents resolve as cache hits and the resume
cost is exactly the failed work.
"""

from __future__ import annotations

from pathlib import Path

from repro.resilience.failures import FailureManifest


def load_manifest(manifest: FailureManifest | str | Path) -> FailureManifest:
    """Accept a manifest object or a path to one on disk."""
    if isinstance(manifest, FailureManifest):
        return manifest
    return FailureManifest.load(manifest)


def zoo_specs_from_manifest(manifest: FailureManifest | str | Path):
    """The failed :class:`ZooSpec`\\ s recorded in ``manifest`` (deduplicated,
    order-preserving).  Entries without a zoo payload are skipped."""
    from repro.experiments.zoo import ZooSpec

    manifest = load_manifest(manifest)
    specs: dict = {}
    for failure in manifest.failures:
        payload = failure.payload or {}
        if payload.get("kind") != "zoo":
            continue
        spec = ZooSpec(
            task_name=payload["task"],
            model_name=payload["model"],
            method_name=payload.get("method"),
            repetition=int(payload.get("repetition", 0)),
            robust=bool(payload.get("robust", False)),
        )
        specs.setdefault(spec, None)
    return list(specs)


def resume_zoo(
    manifest: FailureManifest | str | Path,
    scale,
    jobs: int | None = None,
    *,
    on_error: str = "collect",
    max_retries: int | None = None,
    cell_timeout: float | None = None,
    start_method: str | None = None,
):
    """Re-dispatch the failed cells of a zoo build manifest.

    Only the manifest's cells are passed to ``build_zoo``; everything
    that survived the original run is untouched (its artifacts satisfy
    the dependency probes as cache hits, visible in the run ledger's
    ``zoo.cache_hit`` counter).  Raises ``ValueError`` when the manifest
    has no resumable zoo cells or was produced under a different
    experiment scale (its artifacts would not line up with the cache).
    """
    from repro import observe
    from repro.experiments.zoo import build_zoo

    manifest = load_manifest(manifest)
    if manifest.scale_digest and manifest.scale_digest != scale.digest():
        raise ValueError(
            f"manifest {manifest.label!r} was recorded at scale digest "
            f"{manifest.scale_digest}, not {scale.digest()}: resuming would "
            "recompute against a different cache namespace"
        )
    specs = zoo_specs_from_manifest(manifest)
    if not specs:
        raise ValueError(
            f"manifest {manifest.label!r} has no resumable zoo cells "
            f"({len(manifest)} failures recorded)"
        )
    observe.event(
        "resume", label=manifest.label, cells=len(specs), created=manifest.created
    )
    return build_zoo(
        specs,
        scale,
        jobs=jobs,
        start_method=start_method,
        on_error=on_error,
        max_retries=max_retries,
        cell_timeout=cell_timeout,
    )
