"""Deterministic fault injection ("chaos") for the execution engine.

The crash-safety claims of the cache and ledger layers — atomic publish,
corrupt-archive-as-miss, merge-on-failure — are only claims until a test
actually kills a worker mid-cell or tears an archive mid-publish.  This
module injects exactly those faults, **deterministically**: every
decision is a pure function of ``(seed, site, cell key, attempt)``, so a
chaos run is reproducible bit for bit and a retried cell can be made to
succeed (the attempt number changes the draw).

Injection sites
---------------
- ``worker.exception`` — raise :class:`ChaosError` (a *transient*,
  retryable failure) at the top of a worker cell;
- ``worker.crash`` — hard-kill the worker with ``os._exit`` (no cleanup,
  no result; exercises crash detection and worker replacement).  Never
  fires in the chaos owner process, so enabling chaos in a test or a
  serial run cannot kill the test runner itself;
- ``worker.delay`` — sleep ``delay_seconds`` before running the cell
  (exercises deadlines and hung-worker replacement);
- ``publish.torn`` — truncate an archive *after* it was atomically
  published (simulates a torn copy / lost-page crash; exercises
  corrupt-archive-as-miss recovery);
- ``lock.hold`` — hold an acquired file lock for ``lock_hold_seconds``
  (exercises lock starvation and ``LockTimeout`` retry classification).

Opt-in via ``chaos.configure(...)`` or the ``REPRO_CHAOS`` environment
variable: ``1`` enables a mild default profile; a spec string such as
``"exception_rate=0.5,crash_rate=0.1,seed=7,only_keys=wt|ft"`` sets
fields explicitly.  ``configure`` exports the spec back into the
environment so forked *and* spawned workers inherit the same faults.
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass
from pathlib import Path

from repro.resilience.retry import stable_unit

ENV_VAR = "REPRO_CHAOS"
OWNER_ENV = "REPRO_CHAOS_OWNER"

_FALSY = ("", "0", "false", "off", "no")
_TRUTHY = ("1", "true", "on", "yes")


class ChaosError(RuntimeError):
    """An injected transient worker failure (classified retryable)."""


@dataclass(frozen=True)
class ChaosConfig:
    """Fault rates and scoping for one chaos run.

    Rates are per-decision probabilities in [0, 1]; a rate of 1.0 fires
    on every eligible decision.  ``only_keys`` restricts injection to
    cells whose key contains any of the substrings; ``first_attempts_only
    > 0`` injects worker faults only while ``attempt <`` that bound, so a
    retried cell deterministically recovers; ``max_per_key > 0`` caps
    file-site injections (torn writes, lock holds) per (site, key) per
    process, so a recovery path re-publishing the same artifact is not
    re-torn forever.
    """

    exception_rate: float = 0.0
    crash_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 0.5
    torn_write_rate: float = 0.0
    lock_hold_rate: float = 0.0
    lock_hold_seconds: float = 0.25
    lease_kill_rate: float = 0.0
    seed: int = 0
    only_keys: tuple[str, ...] = ()
    first_attempts_only: int = 0
    max_per_key: int = 1

    def __post_init__(self):
        for name in (
            "exception_rate", "crash_rate", "delay_rate",
            "torn_write_rate", "lock_hold_rate", "lease_kill_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")

    def active(self) -> bool:
        return any(
            (
                self.exception_rate,
                self.crash_rate,
                self.delay_rate,
                self.torn_write_rate,
                self.lock_hold_rate,
                self.lease_kill_rate,
            )
        )

    # ------------------------------------------------------ env transport
    def to_spec(self) -> str:
        """Serialize to the ``REPRO_CHAOS`` spec-string format."""
        default = ChaosConfig()
        parts = []
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value == getattr(default, f.name):
                continue
            if f.name == "only_keys":
                value = "|".join(value)
            parts.append(f"{f.name}={value}")
        # An all-default (inactive) config must not serialize to a bare
        # truthy flag, which would deserialize as DEFAULT_PROFILE.
        return ",".join(parts) or f"seed={self.seed}"

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosConfig":
        """Parse a ``REPRO_CHAOS`` value: truthy flag or ``k=v,...`` spec."""
        spec = spec.strip()
        if spec.lower() in _TRUTHY:
            return DEFAULT_PROFILE
        fields = {f.name: f for f in dataclasses.fields(cls)}
        kwargs: dict = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(
                    f"bad {ENV_VAR} entry {part!r}: expected name=value"
                )
            name, _, raw = part.partition("=")
            name = name.strip()
            if name not in fields:
                raise ValueError(
                    f"unknown {ENV_VAR} field {name!r} "
                    f"(have {sorted(fields)})"
                )
            if name == "only_keys":
                kwargs[name] = tuple(k for k in raw.split("|") if k)
            elif name in ("seed", "first_attempts_only", "max_per_key"):
                kwargs[name] = int(raw)
            else:
                kwargs[name] = float(raw)
        return cls(**kwargs)


#: What a bare ``REPRO_CHAOS=1`` means: transient worker exceptions plus
#: occasional torn archives — enough to exercise retry and corrupt-as-miss
#: paths everywhere without hard-killing unsuspecting processes.
DEFAULT_PROFILE = ChaosConfig(exception_rate=0.15, torn_write_rate=0.1, seed=1)


class _ChaosState:
    """Per-process chaos state: parsed config + per-(site, key) counters."""

    __slots__ = ("config", "pid", "counts")

    def __init__(self, config: ChaosConfig):
        self.config = config
        self.pid = os.getpid()
        self.counts: dict[tuple[str, str], int] = {}


_state: _ChaosState | None = None


def _get_state() -> _ChaosState | None:
    """Active chaos state, re-read from the environment when unset or
    after a fork (a forked worker gets fresh per-key counters)."""
    global _state
    if _state is not None and _state.pid == os.getpid():
        return _state
    raw = os.environ.get(ENV_VAR, "").strip()
    if raw.lower() in _FALSY:
        _state = None
        return None
    _state = _ChaosState(ChaosConfig.from_spec(raw))
    return _state


def configure(config: ChaosConfig | None = None, **fields) -> ChaosConfig:
    """Enable chaos for this process tree and return the active config.

    Accepts a full :class:`ChaosConfig` or its fields as keywords.  The
    spec is exported to ``REPRO_CHAOS`` (and this pid to
    ``REPRO_CHAOS_OWNER``) so worker processes reconstruct the identical
    fault plan; crash injection is suppressed in the owner process.
    """
    global _state
    if config is None:
        config = ChaosConfig(**fields)
    elif fields:
        config = dataclasses.replace(config, **fields)
    os.environ[ENV_VAR] = config.to_spec()
    os.environ[OWNER_ENV] = str(os.getpid())
    _state = _ChaosState(config)
    return config


def disable() -> None:
    """Disable chaos and clear the exported environment."""
    global _state
    _state = None
    os.environ.pop(ENV_VAR, None)
    os.environ.pop(OWNER_ENV, None)


def enabled() -> bool:
    state = _get_state()
    return state is not None and state.config.active()


def current() -> ChaosConfig | None:
    """The active config, or ``None`` when chaos is off."""
    state = _get_state()
    return None if state is None else state.config


# ---------------------------------------------------------------- decisions


def _key_matches(config: ChaosConfig, key: str) -> bool:
    return not config.only_keys or any(s in key for s in config.only_keys)


def _should(
    state: _ChaosState,
    site: str,
    key: str,
    rate: float,
    attempt: int = 0,
    counted: bool = False,
) -> bool:
    config = state.config
    if rate <= 0.0 or not _key_matches(config, key):
        return False
    if site.startswith(("worker.", "queue.")) and config.first_attempts_only > 0:
        if attempt >= config.first_attempts_only:
            return False
    if counted and config.max_per_key > 0:
        if state.counts.get((site, key), 0) >= config.max_per_key:
            return False
    if stable_unit("chaos", config.seed, site, key, attempt) >= rate:
        return False
    if counted:
        state.counts[(site, key)] = state.counts.get((site, key), 0) + 1
    return True


def _record(site: str, key: str) -> None:
    from repro import observe

    observe.incr("chaos.injected", site=site)
    observe.event("chaos", site=site, key=key)


def _is_owner() -> bool:
    owner = os.environ.get(OWNER_ENV, "")
    return owner.isdigit() and int(owner) == os.getpid()


# -------------------------------------------------------------------- sites


def on_worker_cell(key: str, attempt: int = 0) -> None:
    """Worker-cell entry hook: may raise, hard-exit, or stall.

    Called by the pool (and the serial fallback) with the cell's key and
    attempt number before running the cell function.
    """
    state = _get_state()
    if state is None:
        return
    config = state.config
    if _should(state, "worker.crash", key, config.crash_rate, attempt):
        if not _is_owner():
            _record("worker.crash", key)
            os._exit(23)
        # In the owner process a hard exit would kill the run itself;
        # degrade the injection to a transient exception instead.
        _record("worker.crash-as-exception", key)
        raise ChaosError(f"chaos: injected crash (owner-degraded) for {key!r}")
    if _should(state, "worker.delay", key, config.delay_rate, attempt):
        _record("worker.delay", key)
        time.sleep(config.delay_seconds)
    if _should(state, "worker.exception", key, config.exception_rate, attempt):
        _record("worker.exception", key)
        raise ChaosError(
            f"chaos: injected worker exception for {key!r} (attempt {attempt})"
        )


def on_queue_task(key: str, attempt: int = 0) -> None:
    """Queue-worker hook: may hard-kill the worker mid-lease (SIGKILL).

    Called by :mod:`repro.queue.worker` after a lease was claimed and
    journaled but before the task function runs — the worst moment to
    die, because the lease is live and nobody will ever complete or fail
    it.  Exercises stale-lease reclamation end to end.  ``attempt`` is
    the task's lease number (0-based), so ``first_attempts_only=1``
    guarantees the reclaimed lease's retry survives.

    SIGKILL gives the process no chance to clean up — no atexit, no
    finally blocks, no lease release — exactly like an OOM kill or a
    host loss.  Never fires in the chaos owner process (a test or a
    serial driver would kill itself); there it degrades to a transient
    exception like the crash site does.
    """
    state = _get_state()
    if state is None:
        return
    if _should(state, "queue.kill", key, state.config.lease_kill_rate, attempt):
        if not _is_owner():
            _record("queue.kill", key)
            import signal

            os.kill(os.getpid(), signal.SIGKILL)
        _record("queue.kill-as-exception", key)
        raise ChaosError(
            f"chaos: injected lease kill (owner-degraded) for {key!r}"
        )


def on_publish(path: str | Path) -> None:
    """Post-publish hook: may tear (truncate) the just-written archive."""
    state = _get_state()
    if state is None:
        return
    path = Path(path)
    if _should(
        state, "publish.torn", path.name, state.config.torn_write_rate,
        counted=True,
    ):
        _record("publish.torn", path.name)
        tear_file(path)


def on_lock_acquired(path: str | Path) -> None:
    """Post-acquire hook: may hold the lock to starve other waiters."""
    state = _get_state()
    if state is None:
        return
    name = Path(path).name
    if _should(
        state, "lock.hold", name, state.config.lock_hold_rate, counted=True
    ):
        _record("lock.hold", name)
        time.sleep(state.config.lock_hold_seconds)


def tear_file(path: str | Path) -> None:
    """Truncate ``path`` to half its bytes: a deterministic torn write."""
    path = Path(path)
    data = path.read_bytes()
    path.write_bytes(data[: max(len(data) // 2, 1)])
