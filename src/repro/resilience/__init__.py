"""Fault-tolerant execution: retries, failure manifests, chaos, resume.

A production-scale sweep is a multi-hour (task × model × method ×
repetition × distribution) grid; this package is what lets it *finish*
instead of aborting on the first fault:

- :mod:`repro.resilience.retry` — classification of transient vs
  deterministic failures and an exponential-backoff
  :class:`~repro.resilience.retry.RetryPolicy` with per-cell seeded
  jitter;
- :mod:`repro.resilience.failures` — structured
  :class:`~repro.resilience.failures.CellFailure` records and the
  JSON :class:`~repro.resilience.failures.FailureManifest` a degraded
  grid persists next to its artifacts;
- :mod:`repro.resilience.chaos` — a deterministic fault-injection
  harness (worker exceptions, hard crashes, deadline-blowing delays,
  torn archive writes, lock starvation), opt-in via ``REPRO_CHAOS`` or
  :func:`~repro.resilience.chaos.configure`, seeded per cell key;
- :mod:`repro.resilience.resume` — ``--resume <manifest>``: recompute
  only the failed cells of a degraded run against the warm cache.

The execution engine (:mod:`repro.parallel.pool`) consumes retry and
failure records directly; :mod:`repro.experiments.zoo` and the study
grids add manifest persistence and dependency-aware degradation on top.
"""

from repro.resilience.chaos import ChaosConfig, ChaosError
from repro.resilience.failures import (
    KIND_CRASH,
    KIND_DEPENDENCY,
    KIND_EXCEPTION,
    KIND_QUARANTINE,
    KIND_TIMEOUT,
    CellFailure,
    FailureManifest,
    default_manifest_path,
)
from repro.resilience.resume import (
    load_manifest,
    load_manifests,
    resume_zoo,
    zoo_specs_from_manifest,
)
from repro.resilience.retry import (
    CELL_TIMEOUT_ENV,
    MAX_RETRIES_ENV,
    RetryPolicy,
    is_retryable,
    is_retryable_type,
    register_retryable,
    resolve_cell_timeout,
    resolve_max_retries,
    stable_seed,
    stable_unit,
)

__all__ = [
    "ChaosConfig",
    "ChaosError",
    "CellFailure",
    "FailureManifest",
    "default_manifest_path",
    "KIND_EXCEPTION",
    "KIND_CRASH",
    "KIND_TIMEOUT",
    "KIND_DEPENDENCY",
    "KIND_QUARANTINE",
    "RetryPolicy",
    "MAX_RETRIES_ENV",
    "CELL_TIMEOUT_ENV",
    "is_retryable",
    "is_retryable_type",
    "register_retryable",
    "resolve_cell_timeout",
    "resolve_max_retries",
    "stable_seed",
    "stable_unit",
    "load_manifest",
    "load_manifests",
    "resume_zoo",
    "zoo_specs_from_manifest",
]
