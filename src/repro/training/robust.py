"""Robust (re-)training protocol (Section 6 / Table 11 of the paper).

Corruptions are split into mutually exclusive *train* and *test*
distributions such that every category (noise / blur / weather / digital)
appears on both sides.  During robust training each sampled image is
corrupted with a uniformly chosen train-distribution corruption (or left
clean); the held-out corruptions define the evaluation test distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.augmentation import CorruptionAugmenter
from repro.data.corruptions import CORRUPTION_CATEGORIES, available_corruptions
from repro.utils.rng import as_rng

# Mirrors Table 11 (speckle noise is not part of the robust protocol there).
_TRAIN_CORRUPTIONS = (
    "impulse_noise",
    "shot_noise",
    "motion_blur",
    "zoom_blur",
    "snow",
    "contrast",
    "elastic",
    "pixelate",
)
_TEST_CORRUPTIONS = (
    "gaussian_noise",
    "defocus_blur",
    "glass_blur",
    "brightness",
    "fog",
    "frost",
    "jpeg",
)


@dataclass(frozen=True)
class RobustProtocol:
    """A disjoint train/test corruption split."""

    train_corruptions: tuple[str, ...] = _TRAIN_CORRUPTIONS
    test_corruptions: tuple[str, ...] = _TEST_CORRUPTIONS
    severity: int = 3

    def __post_init__(self):
        overlap = set(self.train_corruptions) & set(self.test_corruptions)
        if overlap:
            raise ValueError(f"train/test corruptions overlap: {sorted(overlap)}")
        unknown = (
            set(self.train_corruptions) | set(self.test_corruptions)
        ) - set(available_corruptions())
        if unknown:
            raise ValueError(f"unknown corruptions: {sorted(unknown)}")

    def categories_covered(self) -> dict[str, tuple[bool, bool]]:
        """Per category: (present in train dist, present in test dist)."""
        out = {}
        for category, names in CORRUPTION_CATEGORIES.items():
            out[category] = (
                any(n in self.train_corruptions for n in names),
                any(n in self.test_corruptions for n in names),
            )
        return out

    def augmenter(
        self, rng: np.random.Generator | int | None = None
    ) -> CorruptionAugmenter:
        """The train-time augmenter implementing this protocol."""
        return CorruptionAugmenter(
            self.train_corruptions, severity=self.severity, rng=as_rng(rng)
        )


def default_robust_protocol(severity: int = 3) -> RobustProtocol:
    """The Table-11 split at the paper's default severity 3."""
    return RobustProtocol(severity=severity)
