"""Training history records."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EpochRecord:
    """One epoch's trace.

    ``lr_last`` is the learning rate of the epoch's final step and
    ``lr_mean`` the average over all its steps — with per-step warm-up or
    decay the two differ, and recording only one hides schedule bugs.
    """

    epoch: int
    train_loss: float
    train_accuracy: float
    lr_last: float = float("nan")
    lr_mean: float = float("nan")

    @property
    def lr(self) -> float:
        """Backwards-compatible alias for :attr:`lr_last`."""
        return self.lr_last


@dataclass
class History:
    """Per-epoch training trace."""

    epochs: list[EpochRecord] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.epochs.append(record)

    @property
    def final_train_loss(self) -> float:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1].train_loss

    @property
    def final_train_accuracy(self) -> float:
        if not self.epochs:
            raise ValueError("history is empty")
        return self.epochs[-1].train_accuracy

    def losses(self) -> list[float]:
        return [e.train_loss for e in self.epochs]

    def __len__(self) -> int:
        return len(self.epochs)
