"""Training and evaluation loops.

The :class:`Trainer` reproduces the paper's recipe structure (Tables 3/5/7):
SGD with momentum and weight decay, a learning-rate schedule with linear
warm-up, standard crop/flip augmentation, and — critically for Algorithm 1 —
``retrain()`` re-runs the *identical* recipe from epoch 0, as Renda et
al. (2020) fine-tuning does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro import nn, observe
from repro.infer import train_engine_for
from repro.data.datasets import Dataset, Normalizer, TaskSuite
from repro.data.augmentation import random_crop_flip
from repro.data.loaders import iterate_minibatches
from repro.optim import SGD, ConstantLR, LRSchedule, WarmupLR
from repro.training.history import EpochRecord, History
from repro.training.metrics import accuracy_from_logits
from repro.utils.rng import as_rng


@dataclass
class TrainConfig:
    """Hyperparameters of one training (or retraining) run."""

    epochs: int = 10
    batch_size: int = 64
    lr: float = 0.1
    momentum: float = 0.9
    nesterov: bool = False
    weight_decay: float = 1e-4
    warmup_epochs: float = 1.0
    schedule: LRSchedule = field(default_factory=ConstantLR)
    # Retraining re-runs the same recipe; when it is shorter than the
    # original training, the LR decay must be compressed into the shorter
    # budget or the fine-tuning phase is never reached.
    retrain_schedule: LRSchedule | None = None
    augment: bool = True
    seed: int = 0


def evaluate_model(
    model: nn.Module,
    images: np.ndarray,
    labels: np.ndarray,
    normalizer: Normalizer | None = None,
    batch_size: int = 256,
    transform: Callable[[np.ndarray], np.ndarray] | None = None,
) -> dict[str, float]:
    """Evaluate a model; returns ``{"accuracy", "error", "loss"}``.

    ``transform`` is applied to the *normalized* inputs, which is where the
    paper injects ℓ∞ noise.  Forwards go through the :mod:`repro.infer`
    engine (compiled no-grad plans with a plain ``Module`` fallback);
    ``model`` may be a :class:`~repro.infer.InferenceEngine` directly.
    The chunking below keeps the historical batch boundaries so per-batch
    ``transform`` randomness draws exactly as before.
    """
    from repro.infer import engine_for
    from repro.training.metrics import (
        confusion_matrix,
        cross_entropy_from_logits,
        per_class_iou,
    )

    engine = engine_for(model)
    total, correct, loss_sum = 0, 0.0, 0.0
    confusion: np.ndarray | None = None
    for start in range(0, len(images), batch_size):
        x = images[start : start + batch_size]
        y = labels[start : start + batch_size]
        if normalizer is not None:
            x = normalizer(x)
        if transform is not None:
            x = transform(x)
        logits = engine.logits(x, batch_size=batch_size)
        n = len(x)
        loss_sum += cross_entropy_from_logits(logits, y) * n
        correct += accuracy_from_logits(logits, y) * n
        total += n
        if logits.ndim == 4:  # dense prediction: also track IoU
            num_classes = logits.shape[1]
            batch_conf = confusion_matrix(logits.argmax(axis=1), y, num_classes)
            confusion = batch_conf if confusion is None else confusion + batch_conf
    accuracy = correct / total
    out = {"accuracy": accuracy, "error": 1.0 - accuracy, "loss": loss_sum / total}
    if confusion is not None:
        ious = per_class_iou(confusion)
        out["iou"] = float(np.nanmean(ious))
    return out


class Trainer:
    """Trains a model on a :class:`TaskSuite` with the paper's recipe shape."""

    def __init__(
        self,
        model: nn.Module,
        task: TaskSuite,
        config: TrainConfig,
        augment_fn: Callable[[np.ndarray], np.ndarray] | None = None,
    ):
        self.model = model
        self.task = task
        self.config = config
        self.normalizer = task.normalizer()
        self.loss_fn = nn.CrossEntropyLoss()
        self._extra_augment = augment_fn
        self._rng = as_rng(config.seed)

    # ------------------------------------------------------------- internal
    def _augment(self, batch: np.ndarray) -> np.ndarray:
        if self._extra_augment is not None:
            batch = self._extra_augment(batch)
        if self.config.augment:
            batch = random_crop_flip(batch, self._rng)
        return batch

    # --------------------------------------------------------------- public
    def train(
        self,
        epochs: int | None = None,
        schedule: LRSchedule | None = None,
        label: str = "train",
    ) -> History:
        """Run the full recipe (used both for training and for retraining).

        A caller-supplied ``schedule`` that is already a :class:`WarmupLR`
        is used as-is (no double warm-up); otherwise the config's warm-up
        is wrapped around it.  The schedule is evaluated at each step's
        *completed* fractional epoch — never exactly 0, so the first batch
        trains at a non-zero learning rate instead of a wasted no-op step.
        """
        cfg = self.config
        epochs = cfg.epochs if epochs is None else epochs
        base = schedule if schedule is not None else cfg.schedule
        if not isinstance(base, WarmupLR):
            base = WarmupLR(base, cfg.warmup_epochs)
        schedule = base
        train = self.task.train_set()
        if len(train) == 0:
            raise ValueError(
                f"cannot train {label!r}: the training set is empty"
            )
        optimizer = SGD(
            self.model.parameters(),
            lr=cfg.lr,
            momentum=cfg.momentum,
            weight_decay=cfg.weight_decay,
            nesterov=cfg.nesterov,
        )
        # The compiled-training seam: static forward+backward plans with a
        # per-batch tape fallback (REPRO_TRAINC=0, untraceable model, or
        # failed compile-time validation) — see repro.infer.trainengine.
        engine = train_engine_for(self.model, self.loss_fn, optimizer)
        history = History()
        self.model.train()
        # When no augmentation runs, every epoch would re-normalize the
        # same images; hoist the normalization out of the loop.  With
        # augmentation on, the per-batch path is kept bit-identical.
        static_inputs = not cfg.augment and self._extra_augment is None
        images = self.normalizer(train.images) if static_inputs else train.images
        n_batches = max(int(np.ceil(len(train) / cfg.batch_size)), 1)
        first_step = 1.0 / n_batches
        observing = observe.enabled()

        with observe.span(label, epochs=epochs, batch_size=cfg.batch_size):
            for epoch in range(epochs):
                loss_sum, acc_sum, seen = 0.0, 0.0, 0
                lr_sum, lr_trace = 0.0, []
                epoch_t0 = time.perf_counter()
                for b, (x, y) in enumerate(
                    iterate_minibatches(
                        images,
                        train.labels,
                        cfg.batch_size,
                        rng=self._rng,
                        augment=self._augment,
                    )
                ):
                    optimizer.lr = cfg.lr * schedule(
                        max(epoch + b / n_batches, first_step)
                    )
                    lr_sum += optimizer.lr
                    if observing:
                        lr_trace.append(optimizer.lr)
                    if not static_inputs:
                        x = self.normalizer(x)
                    loss_val, logits = engine.step(x, y)
                    n = len(x)
                    loss_sum += loss_val * n
                    acc_sum += accuracy_from_logits(logits, y) * n
                    seen += n
                record = EpochRecord(
                    epoch=epoch,
                    train_loss=loss_sum / seen,
                    train_accuracy=acc_sum / seen,
                    lr_last=optimizer.lr,
                    lr_mean=lr_sum / (b + 1),
                )
                history.append(record)
                if observing:
                    epoch_seconds = time.perf_counter() - epoch_t0
                    observe.hist(
                        "train.batches_per_s",
                        (b + 1) / epoch_seconds if epoch_seconds > 0 else 0.0,
                    )
                    observe.event(
                        "epoch",
                        label=label,
                        epoch=epoch,
                        train_loss=record.train_loss,
                        train_accuracy=record.train_accuracy,
                        lr_last=record.lr_last,
                        lr_mean=record.lr_mean,
                        lr_trace=[round(v, 8) for v in lr_trace],
                        seconds=epoch_seconds,
                    )
        return history

    def retrain(self, epochs: int | None = None) -> History:
        """Retrain after pruning with the identical recipe (Algorithm 1, l.6)."""
        return self.train(
            epochs, schedule=self.config.retrain_schedule, label="retrain"
        )

    def evaluate(
        self,
        dataset: Dataset | None = None,
        transform: Callable[[np.ndarray], np.ndarray] | None = None,
    ) -> dict[str, float]:
        """Evaluate on ``dataset`` (defaults to the nominal test split)."""
        dataset = dataset or self.task.test_set()
        return evaluate_model(
            self.model,
            dataset.images,
            dataset.labels,
            normalizer=self.normalizer,
            transform=transform,
        )
