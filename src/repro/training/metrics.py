"""Evaluation metrics beyond plain accuracy.

The segmentation experiments (Table 8) report intersection-over-union in
addition to top-1 pixel accuracy.
"""

from __future__ import annotations

import numpy as np


def confusion_matrix(
    predictions: np.ndarray, targets: np.ndarray, num_classes: int
) -> np.ndarray:
    """Dense (num_classes, num_classes) confusion counts, rows = target."""
    predictions = np.asarray(predictions).reshape(-1)
    targets = np.asarray(targets).reshape(-1)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {targets.shape}"
        )
    valid = (targets >= 0) & (targets < num_classes)
    idx = targets[valid] * num_classes + predictions[valid]
    counts = np.bincount(idx, minlength=num_classes * num_classes)
    return counts.reshape(num_classes, num_classes)


def per_class_iou(confusion: np.ndarray) -> np.ndarray:
    """IoU per class from a confusion matrix; NaN for absent classes."""
    tp = np.diag(confusion).astype(float)
    fp = confusion.sum(axis=0) - tp
    fn = confusion.sum(axis=1) - tp
    union = tp + fp + fn
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(union > 0, tp / union, np.nan)


def mean_iou(
    predictions: np.ndarray, targets: np.ndarray, num_classes: int
) -> float:
    """Mean IoU over classes that appear in targets or predictions."""
    ious = per_class_iou(confusion_matrix(predictions, targets, num_classes))
    present = ~np.isnan(ious)
    if not present.any():
        raise ValueError("no class present in targets or predictions")
    return float(ious[present].mean())


def pixel_accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 per-pixel accuracy."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    return float((predictions == targets).mean())
