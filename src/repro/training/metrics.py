"""Evaluation metrics beyond plain accuracy.

The segmentation experiments (Table 8) report intersection-over-union in
addition to top-1 pixel accuracy.
"""

from __future__ import annotations

import numpy as np


def accuracy_from_logits(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy from raw logits.

    Accepts classification logits ``(N, K)`` with labels ``(N,)`` or dense
    segmentation logits ``(N, K, H, W)`` with labels ``(N, H, W)``; the
    class axis is 1 in both layouts.
    """
    return float((np.asarray(logits).argmax(axis=1) == np.asarray(labels)).mean())


def cross_entropy_from_logits(logits: np.ndarray, targets: np.ndarray) -> float:
    """Mean cross entropy from raw logits, matching ``nn.CrossEntropyLoss``.

    Reproduces the autograd loss bit-for-bit (same shift/logsumexp order
    and the same ``(N, K, H, W) -> (N*H*W, K)`` dense flattening) so the
    no-grad eval path reports identical losses.
    """
    logits = np.asarray(logits)
    targets = np.asarray(targets)
    if logits.ndim == 4:
        n, k, h, w = logits.shape
        logits = logits.transpose(0, 2, 3, 1).reshape(n * h * w, k)
        targets = targets.reshape(-1)
    if targets.ndim != 1 or logits.ndim != 2:
        raise ValueError(
            f"expected logits (N, K) and targets (N,), got {logits.shape}, {targets.shape}"
        )
    targets = targets.astype(np.int64)
    shifted = logits - logits.max(axis=1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    logprobs = shifted - logsumexp
    return float(-logprobs[np.arange(logits.shape[0]), targets].mean())


def confusion_matrix(
    predictions: np.ndarray, targets: np.ndarray, num_classes: int
) -> np.ndarray:
    """Dense (num_classes, num_classes) confusion counts, rows = target."""
    predictions = np.asarray(predictions).reshape(-1)
    targets = np.asarray(targets).reshape(-1)
    if predictions.shape != targets.shape:
        raise ValueError(
            f"shape mismatch: {predictions.shape} vs {targets.shape}"
        )
    valid = (targets >= 0) & (targets < num_classes)
    idx = targets[valid] * num_classes + predictions[valid]
    counts = np.bincount(idx, minlength=num_classes * num_classes)
    return counts.reshape(num_classes, num_classes)


def per_class_iou(confusion: np.ndarray) -> np.ndarray:
    """IoU per class from a confusion matrix; NaN for absent classes."""
    tp = np.diag(confusion).astype(float)
    fp = confusion.sum(axis=0) - tp
    fn = confusion.sum(axis=1) - tp
    union = tp + fp + fn
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(union > 0, tp / union, np.nan)


def mean_iou(
    predictions: np.ndarray, targets: np.ndarray, num_classes: int
) -> float:
    """Mean IoU over classes that appear in targets or predictions."""
    ious = per_class_iou(confusion_matrix(predictions, targets, num_classes))
    present = ~np.isnan(ious)
    if not present.any():
        raise ValueError("no class present in targets or predictions")
    return float(ious[present].mean())


def pixel_accuracy(predictions: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 per-pixel accuracy."""
    predictions = np.asarray(predictions)
    targets = np.asarray(targets)
    return float((predictions == targets).mean())
