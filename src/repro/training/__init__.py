"""Training loops, evaluation, and the robust-training protocol."""

from repro.training.history import EpochRecord, History
from repro.training.trainer import TrainConfig, Trainer, evaluate_model
from repro.training.robust import RobustProtocol, default_robust_protocol

__all__ = [
    "TrainConfig",
    "Trainer",
    "evaluate_model",
    "History",
    "EpochRecord",
    "RobustProtocol",
    "default_robust_protocol",
]
