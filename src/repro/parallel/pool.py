"""Spawn-safe multiprocessing worker pool for embarrassingly parallel grids.

Zoo building and experiment grids are (task, model, method, repetition) ×
(distribution) products of independent cells, so the execution engine is a
thin, predictable layer over ``multiprocessing``:

- :func:`parallel_map` — ordered or unordered map with chunking and clean
  error propagation (remote tracebacks travel back verbatim);
- :func:`resolve_jobs` — worker-count resolution from an explicit value,
  the ``REPRO_NUM_WORKERS`` environment variable, or a serial default;
- ``jobs=1`` never touches ``multiprocessing`` at all: the map runs in
  the calling process, so serial results are bit-identical to the
  pre-parallel code path and debuggers/profilers see one process.

Worker callables must be picklable (module-level functions), which keeps
every dispatch site spawn-start-method safe; the start method defaults to
``fork`` where available (cheap on Linux) and can be forced via the
``REPRO_MP_START`` environment variable.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Callable, Iterable, Sequence, TypeVar

from repro import observe

T = TypeVar("T")
R = TypeVar("R")

JOBS_ENV = "REPRO_NUM_WORKERS"
START_METHOD_ENV = "REPRO_MP_START"


class WorkerError(RuntimeError):
    """An exception raised inside a worker process.

    Carries the remote traceback text so the failure is debuggable from
    the parent; the original exception type/message lead the string form.
    """

    def __init__(self, message: str, remote_traceback: str = ""):
        super().__init__(message)
        self.remote_traceback = remote_traceback

    def __str__(self) -> str:
        base = super().__str__()
        if self.remote_traceback:
            return f"{base}\n--- remote traceback ---\n{self.remote_traceback}"
        return base


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a worker count: explicit arg > ``REPRO_NUM_WORKERS`` > 1.

    ``0`` (or any non-positive value) means "all CPUs".
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer, got {raw!r}"
                ) from None
        else:
            jobs = 1
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def resolve_start_method(start_method: str | None = None) -> str:
    """Explicit arg > ``REPRO_MP_START`` > ``fork`` if available > default."""
    method = start_method or os.environ.get(START_METHOD_ENV, "").strip() or None
    available = multiprocessing.get_all_start_methods()
    if method is None:
        method = "fork" if "fork" in available else multiprocessing.get_start_method()
    if method not in available:
        raise ValueError(
            f"start method {method!r} unavailable here (have {available})"
        )
    return method


def default_chunksize(n_items: int, jobs: int) -> int:
    """~4 chunks per worker: small enough to balance, big enough to amortize."""
    return max(1, -(-n_items // (jobs * 4)))


def _chunked(items: Sequence[T], chunksize: int) -> list[tuple[int, Sequence[T]]]:
    """Split ``items`` into (start_index, chunk) pairs."""
    return [
        (start, items[start : start + chunksize])
        for start in range(0, len(items), chunksize)
    ]


def _run_chunk(payload):
    """Worker-side chunk runner; must stay module-level (picklable)."""
    start, fn, chunk = payload
    try:
        return ("ok", start, [fn(item) for item in chunk])
    except BaseException as exc:  # noqa: BLE001 - repackaged for the parent
        return ("err", start, (type(exc).__name__, str(exc), traceback.format_exc()))


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    chunksize: int | None = None,
    ordered: bool = True,
    start_method: str | None = None,
) -> list[R]:
    """Map ``fn`` over ``items`` across ``jobs`` worker processes.

    ``ordered=True`` returns results positionally; ``ordered=False``
    returns them in completion order (useful for progress reporting).
    At ``jobs=1`` the map runs serially in-process and exceptions
    propagate unwrapped; in parallel mode a worker failure raises
    :class:`WorkerError` with the remote traceback attached.
    """
    items = list(items)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(items) <= 1:
        return [fn(item) for item in items]
    jobs = min(jobs, len(items))
    if chunksize is None:
        chunksize = default_chunksize(len(items), jobs)
    payloads = [(start, fn, chunk) for start, chunk in _chunked(items, chunksize)]

    ctx = multiprocessing.get_context(resolve_start_method(start_method))
    slots: list[list[R] | None] = [None] * len(payloads)
    completion_order: list[list[R]] = []
    # Opening the span before the pool forks exports the run-ledger
    # environment, so worker processes attach their own event streams;
    # the finally-merge folds those streams back even on worker failure.
    try:
        with observe.span(
            "parallel_map", jobs=jobs, items=len(items), chunks=len(payloads)
        ):
            with ctx.Pool(processes=min(jobs, len(payloads))) as pool:
                for status, start, result in pool.imap_unordered(
                    _run_chunk, payloads
                ):
                    if status == "err":
                        exc_type, message, remote_tb = result
                        raise WorkerError(
                            f"worker failed with {exc_type}: {message}", remote_tb
                        )
                    if ordered:
                        slots[start // chunksize] = result
                    else:
                        completion_order.append(result)
    finally:
        observe.merge_worker_streams()
    if ordered:
        return [r for chunk in slots for r in chunk]  # type: ignore[union-attr]
    return [r for chunk in completion_order for r in chunk]


class WorkerPool:
    """A reusable handle bundling (jobs, chunksize, start method).

    Thin sugar over :func:`parallel_map` for call sites that dispatch
    several grids with one configuration.
    """

    def __init__(
        self,
        jobs: int | None = None,
        chunksize: int | None = None,
        start_method: str | None = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.chunksize = chunksize
        self.start_method = start_method

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return parallel_map(
            fn,
            items,
            jobs=self.jobs,
            chunksize=self.chunksize,
            start_method=self.start_method,
        )

    def map_unordered(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        return parallel_map(
            fn,
            items,
            jobs=self.jobs,
            chunksize=self.chunksize,
            ordered=False,
            start_method=self.start_method,
        )
