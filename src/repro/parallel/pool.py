"""Fault-tolerant multiprocessing worker pool for embarrassingly parallel grids.

Zoo building and experiment grids are (task, model, method, repetition) ×
(distribution) products of independent cells, so the execution engine is a
thin, predictable layer over ``multiprocessing`` — but one that survives
the faults a multi-hour sweep actually hits:

- :func:`parallel_map` — ordered or unordered map with chunking and clean
  error propagation (remote tracebacks travel back verbatim);
- **retry with exponential backoff**: transient failures (see
  :mod:`repro.resilience.retry`) are re-dispatched per cell up to
  ``max_retries`` times with deterministically jittered backoff;
- **deadlines and hung-worker replacement**: results are collected by a
  deadline-polled loop, not a blocking iterator — a cell that exceeds
  ``timeout`` seconds gets its worker terminated and (if budget remains)
  is retried on a fresh worker; a worker that dies mid-chunk (OOM kill,
  ``os._exit``) is detected via its exit code and replaced;
- **graceful degradation**: ``on_error="collect"`` returns a
  :class:`MapOutcome` carrying the surviving results plus one structured
  :class:`~repro.resilience.failures.CellFailure` per dead cell, instead
  of aborting the whole grid on the first fault;
- :func:`resolve_jobs` — worker-count resolution from an explicit value,
  the ``REPRO_NUM_WORKERS`` environment variable, or a serial default;
- ``jobs=1`` never touches ``multiprocessing`` at all: the map runs in
  the calling process, so serial results are bit-identical to the
  pre-parallel code path and debuggers/profilers see one process.

Worker callables must be picklable (module-level functions), which keeps
every dispatch site spawn-start-method safe; the start method defaults to
``fork`` where available (cheap on Linux) and can be forced via the
``REPRO_MP_START`` environment variable.  Each chunk runs in a dedicated
worker process, so a crashed or terminated worker never poisons the
cells that come after it.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, TypeVar

from repro import observe
from repro.resilience import chaos
from repro.resilience.failures import (
    KIND_CRASH,
    KIND_EXCEPTION,
    KIND_TIMEOUT,
    CellFailure,
)
from repro.resilience.retry import (
    RetryPolicy,
    is_retryable,
    is_retryable_type,
    resolve_cell_timeout,
    resolve_max_retries,
)

T = TypeVar("T")
R = TypeVar("R")

JOBS_ENV = "REPRO_NUM_WORKERS"
START_METHOD_ENV = "REPRO_MP_START"
EXECUTOR_ENV = "REPRO_EXECUTOR"

#: Valid ``executor=`` values: the in-memory worker pool (this module)
#: and the durable on-disk work queue (:mod:`repro.queue`).
EXECUTORS = ("pool", "queue")

#: How often the collection loop wakes to launch work and check deadlines.
_POLL_SECONDS = 0.05
#: How long after a clean worker exit its queued result may still arrive.
_EXIT_GRACE_SECONDS = 5.0


class WorkerError(RuntimeError):
    """An exception raised inside a worker process.

    Carries the remote traceback text so the failure is debuggable from
    the parent; the original exception type/message lead the string form.
    """

    def __init__(self, message: str, remote_traceback: str = ""):
        super().__init__(message)
        self.remote_traceback = remote_traceback

    def __str__(self) -> str:
        base = super().__str__()
        if self.remote_traceback:
            return f"{base}\n--- remote traceback ---\n{self.remote_traceback}"
        return base

    def __reduce__(self):
        # RuntimeError's default reduction re-raises from ``args`` alone,
        # which would drop ``remote_traceback`` whenever the exception
        # crosses a process boundary (exactly where it matters).
        return (type(self), (super().__str__(), self.remote_traceback))


@dataclass
class MapOutcome:
    """The result of a degraded (``on_error="collect"``) parallel map.

    ``results`` is positional when the map was ordered — failed cells
    hold ``None`` and are enumerated (with their indices) in
    ``failures`` — and completion-ordered successes only when unordered.
    """

    results: list
    failures: list[CellFailure] = field(default_factory=list)
    retries: int = 0

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failed_indices(self) -> list[int]:
        return [f.index for f in self.failures]

    def successes(self) -> list:
        """The surviving results (positional ``None`` holes removed)."""
        failed = set(self.failed_indices)
        return [r for i, r in enumerate(self.results) if i not in failed]


def resolve_jobs(jobs: int | None = None) -> int:
    """Resolve a worker count: explicit arg > ``REPRO_NUM_WORKERS`` > 1.

    ``0`` (or any non-positive value) means "all CPUs".
    """
    if jobs is None:
        raw = os.environ.get(JOBS_ENV, "").strip()
        if raw:
            try:
                jobs = int(raw)
            except ValueError:
                raise ValueError(
                    f"{JOBS_ENV} must be an integer, got {raw!r}"
                ) from None
        else:
            jobs = 1
    jobs = int(jobs)
    if jobs <= 0:
        jobs = os.cpu_count() or 1
    return jobs


def resolve_executor(executor: str | None = None) -> str:
    """Explicit arg > ``REPRO_EXECUTOR`` > ``"pool"``.

    ``"pool"`` is the in-memory worker pool below; ``"queue"`` routes the
    map through the durable work queue (:func:`repro.queue.queue_map`),
    which survives driver and worker crashes and admits workers from
    other processes and hosts.
    """
    if executor is None:
        executor = os.environ.get(EXECUTOR_ENV, "").strip() or "pool"
    if executor not in EXECUTORS:
        raise ValueError(
            f"executor must be one of {EXECUTORS}, got {executor!r}"
        )
    return executor


def resolve_start_method(start_method: str | None = None) -> str:
    """Explicit arg > ``REPRO_MP_START`` > ``fork`` if available > default."""
    method = start_method or os.environ.get(START_METHOD_ENV, "").strip() or None
    available = multiprocessing.get_all_start_methods()
    if method is None:
        method = "fork" if "fork" in available else multiprocessing.get_start_method()
    if method not in available:
        raise ValueError(
            f"start method {method!r} unavailable here (have {available})"
        )
    return method


def default_chunksize(n_items: int, jobs: int) -> int:
    """~4 chunks per worker: small enough to balance, big enough to amortize."""
    return max(1, -(-n_items // (jobs * 4)))


def _chunked(items: Sequence[T], chunksize: int) -> list[tuple[int, Sequence[T]]]:
    """Split ``items`` into (start_index, chunk) pairs."""
    return [
        (start, items[start : start + chunksize])
        for start in range(0, len(items), chunksize)
    ]


def _resolve_keys(
    keys: Sequence[str] | Callable[[T], str] | None, items: Sequence[T]
) -> list[str]:
    """Stable per-cell keys for retry jitter, chaos seeding, and manifests."""
    if keys is None:
        return [f"item-{i}" for i in range(len(items))]
    if callable(keys):
        return [str(keys(item)) for item in items]
    resolved = [str(k) for k in keys]
    if len(resolved) != len(items):
        raise ValueError(
            f"keys has {len(resolved)} entries for {len(items)} items"
        )
    return resolved


def _run_cells(result_queue, task_id: int, fn, cells, attempt: int) -> None:
    """Run one task's cells in a dedicated worker process (module-level).

    ``cells`` is a list of ``(index, key, item)``.  Every cell reports an
    ``("ok", index, value)`` or ``("err", index, (type, message, tb))``
    outcome; a hard crash posts nothing at all, which the parent detects
    through the process exit code and treats as a crash of every cell
    still unaccounted for.
    """
    outcomes = []
    for index, key, item in cells:
        try:
            chaos.on_worker_cell(key, attempt)
            outcomes.append(("ok", index, fn(item)))
        except BaseException as exc:  # noqa: BLE001 - repackaged for the parent
            outcomes.append(
                ("err", index, (type(exc).__name__, str(exc), traceback.format_exc()))
            )
    result_queue.put((task_id, outcomes))


@dataclass
class _Task:
    """One dispatchable unit: a few cells at a shared attempt number."""

    task_id: int
    cells: list[tuple[int, str, Any]]  # (index, key, item)
    attempt: int
    eligible: float  # monotonic time before which this task must not launch


@dataclass
class _Running:
    proc: Any
    task: _Task
    deadline: float | None
    exited_at: float | None = None


class _Abort(Exception):
    """Internal: first fatal failure in ``on_error="raise"`` mode."""

    def __init__(self, failure: CellFailure):
        self.failure = failure


def _worker_error(failure: CellFailure) -> WorkerError:
    return WorkerError(
        f"worker failed with {failure.error_type}: {failure.message}",
        failure.remote_traceback,
    )


def _serial_map(fn, items, keys, policy, on_error, ordered):
    """The ``jobs=1`` path: in-process, bit-identical to pre-parallel code.

    Retries and failure collection still apply (the classification is done
    on live exception instances), but deadlines cannot be enforced without
    a second process, so ``timeout`` is a no-op here.
    """
    results: list[Any] = [None] * len(items)
    failed: set[int] = set()
    failures: list[CellFailure] = []
    retries = 0
    for i, item in enumerate(items):
        attempt = 0
        while True:
            try:
                chaos.on_worker_cell(keys[i], attempt)
                results[i] = fn(item)
                break
            except BaseException as exc:  # noqa: BLE001 - classified below
                retryable = is_retryable(exc)
                if retryable and attempt < policy.max_retries:
                    attempt += 1
                    retries += 1
                    observe.incr("resilience.retry")
                    time.sleep(policy.backoff(attempt, keys[i]))
                    continue
                if on_error == "raise":
                    raise
                failures.append(
                    CellFailure(
                        key=keys[i],
                        index=i,
                        kind=KIND_EXCEPTION,
                        error_type=type(exc).__name__,
                        message=str(exc),
                        attempts=attempt + 1,
                        remote_traceback=traceback.format_exc(),
                        retryable=retryable,
                    )
                )
                failed.add(i)
                observe.incr("resilience.failed")
                break
    if on_error == "collect":
        if not ordered:
            return MapOutcome(
                results=[r for i, r in enumerate(results) if i not in failed],
                failures=failures,
                retries=retries,
            )
        return MapOutcome(results=results, failures=failures, retries=retries)
    return results


def _engine(
    fn,
    items,
    keys,
    jobs,
    chunksize,
    ordered,
    start_method,
    policy,
    timeout,
    on_error,
    span,
):
    """Deadline-polled parallel collection with retry and crash recovery."""
    _MISSING = object()
    ctx = multiprocessing.get_context(resolve_start_method(start_method))
    result_queue = ctx.Queue()
    n = len(items)
    results: list[Any] = [_MISSING] * n
    completion: list[Any] = []
    failures_by_index: dict[int, CellFailure] = {}
    attempts = [0] * n
    retries = 0
    next_task_id = 0
    pending: list[_Task] = []
    running: dict[int, _Running] = {}

    def make_task(cells, attempt, eligible=0.0) -> _Task:
        nonlocal next_task_id
        next_task_id += 1
        return _Task(next_task_id, cells, attempt, eligible)

    for start, chunk in _chunked(list(range(n)), chunksize):
        pending.append(make_task([(i, keys[i], items[i]) for i in chunk], 0))

    def cell_failed(index, kind, error_type, message, remote_tb):
        nonlocal retries
        attempts[index] += 1
        retryable = kind in (KIND_CRASH, KIND_TIMEOUT) or is_retryable_type(error_type)
        key = keys[index]
        if retryable and attempts[index] <= policy.max_retries:
            retries += 1
            observe.incr("resilience.retry")
            delay = policy.backoff(attempts[index], key)
            # Failed cells requeue individually: a poison cell must not
            # drag its chunk siblings through every retry round.
            pending.append(
                make_task(
                    [(index, key, items[index])],
                    attempts[index],
                    time.monotonic() + delay,
                )
            )
            return
        failure = CellFailure(
            key=key,
            index=index,
            kind=kind,
            error_type=error_type,
            message=message,
            attempts=attempts[index],
            remote_traceback=remote_tb,
            retryable=retryable,
        )
        observe.incr("resilience.failed")
        failures_by_index[index] = failure
        if on_error == "raise":
            raise _Abort(failure)

    def handle_outcomes(task_id, outcomes):
        entry = running.pop(task_id, None)
        if entry is not None:
            entry.proc.join(timeout=10)
        for status, index, payload in outcomes:
            if status == "ok":
                if results[index] is _MISSING:
                    results[index] = payload
                    completion.append(payload)
            else:
                error_type, message, remote_tb = payload
                cell_failed(index, KIND_EXCEPTION, error_type, message, remote_tb)

    def reap(task_id, kind, error_type, message):
        """A running task died as a whole (stall or crash): terminate its
        worker and fail every cell still unaccounted for."""
        entry = running.pop(task_id)
        if entry.proc.is_alive():
            entry.proc.terminate()
        entry.proc.join(timeout=10)
        for index, _key, _item in entry.task.cells:
            if results[index] is _MISSING and index not in failures_by_index:
                cell_failed(index, kind, error_type, message, "")

    try:
        while pending or running:
            now = time.monotonic()
            # Launch eligible work into free slots (eligibility implements
            # backoff: a retried cell stays parked until its delay passes).
            pending.sort(key=lambda t: t.eligible)
            while pending and len(running) < jobs and pending[0].eligible <= now:
                task = pending.pop(0)
                proc = ctx.Process(
                    target=_run_cells,
                    args=(result_queue, task.task_id, fn, task.cells, task.attempt),
                    daemon=True,
                )
                proc.start()
                deadline = (
                    None if timeout is None else now + timeout * len(task.cells)
                )
                running[task.task_id] = _Running(proc, task, deadline)

            # Drain every queued result; block briefly on the first read so
            # an idle loop doesn't spin.
            block = True
            while True:
                try:
                    if block:
                        task_id, outcomes = result_queue.get(timeout=_POLL_SECONDS)
                    else:
                        task_id, outcomes = result_queue.get_nowait()
                except queue_module.Empty:
                    break
                block = False
                if task_id in running:
                    handle_outcomes(task_id, outcomes)

            # Deadline-poll the in-flight tasks: stalls are terminated and
            # replaced; a worker that exited without reporting crashed.
            now = time.monotonic()
            for task_id in list(running):
                entry = running[task_id]
                if entry.deadline is not None and now > entry.deadline:
                    observe.incr("resilience.timeout", value=len(entry.task.cells))
                    reap(
                        task_id,
                        KIND_TIMEOUT,
                        "TimeoutError",
                        f"cell exceeded its {timeout:g}s deadline "
                        f"(attempt {entry.task.attempt + 1})",
                    )
                elif entry.proc.exitcode is not None:
                    if entry.proc.exitcode != 0:
                        observe.incr("resilience.crash")
                        reap(
                            task_id,
                            KIND_CRASH,
                            "WorkerCrashError",
                            f"worker exited with code {entry.proc.exitcode} "
                            "without reporting a result",
                        )
                    elif entry.exited_at is None:
                        entry.exited_at = now
                    elif now - entry.exited_at > _EXIT_GRACE_SECONDS:
                        # Clean exit but the result never surfaced: the
                        # queue pipe was lost.  Treat as a crash.
                        observe.incr("resilience.crash")
                        reap(
                            task_id,
                            KIND_CRASH,
                            "WorkerCrashError",
                            "worker exited cleanly but its result never "
                            "arrived",
                        )
    except _Abort as abort:
        raise _worker_error(abort.failure) from None
    finally:
        for entry in running.values():
            if entry.proc.is_alive():
                entry.proc.terminate()
            entry.proc.join(timeout=5)
        result_queue.close()
        span.set(retries=retries, failed=len(failures_by_index))

    if on_error == "collect":
        failures = [failures_by_index[i] for i in sorted(failures_by_index)]
        ordered_results = [None if r is _MISSING else r for r in results]
        return MapOutcome(
            results=ordered_results if ordered else completion,
            failures=failures,
            retries=retries,
        )
    return results if ordered else completion


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: int | None = None,
    chunksize: int | None = None,
    ordered: bool = True,
    start_method: str | None = None,
    *,
    on_error: str = "raise",
    max_retries: int | None = None,
    retry_policy: RetryPolicy | None = None,
    timeout: float | None = None,
    keys: Sequence[str] | Callable[[T], str] | None = None,
    executor: str | None = None,
    queue_dir: str | os.PathLike | None = None,
) -> list[R] | MapOutcome:
    """Map ``fn`` over ``items`` across ``jobs`` worker processes.

    ``ordered=True`` returns results positionally; ``ordered=False``
    returns them in completion order (useful for progress reporting).
    At ``jobs=1`` the map runs serially in-process and exceptions
    propagate unwrapped; in parallel mode a worker failure raises
    :class:`WorkerError` with the remote traceback attached.

    Resilience knobs (all optional):

    - ``max_retries`` / ``retry_policy`` — transient failures (see
      :mod:`repro.resilience.retry`) are retried per cell with seeded
      exponential backoff; deterministic failures are not.  Defaults to
      ``REPRO_MAX_RETRIES`` or 2 retries;
    - ``timeout`` — per-cell deadline in seconds (scaled by chunk length
      per dispatch).  A stalled worker is terminated and replaced.
      Defaults to ``REPRO_CELL_TIMEOUT`` or no deadline;
    - ``on_error="collect"`` — degrade instead of aborting: returns a
      :class:`MapOutcome` with partial results and structured
      :class:`CellFailure` records for cells that exhausted their budget;
    - ``keys`` — stable per-cell names (a sequence, or a callable applied
      to each item) used for manifests, backoff jitter, and chaos
      seeding; defaults to ``item-<index>``.
    - ``executor`` — ``"pool"`` (default, this module) or ``"queue"``:
      route the map through the durable on-disk work queue
      (:mod:`repro.queue`), which survives driver/worker crashes, resumes
      finished cells from its journal, and accepts extra workers from
      other hosts.  ``queue_dir`` pins the queue directory (required for
      multi-host runs; otherwise derived from the grid identity).
      Overridable per run via ``REPRO_EXECUTOR``.
    """
    if not callable(fn):
        raise ValueError(f"fn must be callable, got {type(fn).__name__}")
    if resolve_executor(executor) == "queue":
        from repro.queue.executor import queue_map

        return queue_map(
            fn,
            items,
            jobs,
            keys=keys,
            queue_dir=queue_dir,
            on_error=on_error,
            max_retries=max_retries,
            ordered=ordered,
        )
    if chunksize is not None:
        if not isinstance(chunksize, int) or isinstance(chunksize, bool):
            raise ValueError(f"chunksize must be an int, got {chunksize!r}")
        if chunksize <= 0:
            raise ValueError(f"chunksize must be >= 1, got {chunksize}")
    if on_error not in ("raise", "collect"):
        raise ValueError(
            f"on_error must be 'raise' or 'collect', got {on_error!r}"
        )
    items = list(items)
    cell_keys = _resolve_keys(keys, items)
    if retry_policy is None:
        policy = RetryPolicy(max_retries=resolve_max_retries(max_retries))
    else:
        policy = retry_policy.with_max_retries(
            None if max_retries is None else resolve_max_retries(max_retries)
        )
    timeout = resolve_cell_timeout(timeout)
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(items) <= 1:
        return _serial_map(fn, items, cell_keys, policy, on_error, ordered)
    jobs = min(jobs, len(items))
    if chunksize is None:
        chunksize = default_chunksize(len(items), jobs)

    # Opening the span before the pool forks exports the run-ledger
    # environment, so worker processes attach their own event streams;
    # the finally-merge folds those streams back even on worker failure.
    try:
        with observe.span(
            "parallel_map",
            jobs=jobs,
            items=len(items),
            chunks=-(-len(items) // chunksize),
        ) as sp:
            return _engine(
                fn,
                items,
                cell_keys,
                jobs,
                chunksize,
                ordered,
                start_method,
                policy,
                timeout,
                on_error,
                sp,
            )
    finally:
        observe.merge_worker_streams()


class WorkerPool:
    """A reusable handle bundling (jobs, chunksize, start method) plus the
    resilience knobs (retry budget, per-cell timeout, degradation mode).

    Thin sugar over :func:`parallel_map` for call sites that dispatch
    several grids with one configuration.
    """

    def __init__(
        self,
        jobs: int | None = None,
        chunksize: int | None = None,
        start_method: str | None = None,
        *,
        on_error: str = "raise",
        max_retries: int | None = None,
        retry_policy: RetryPolicy | None = None,
        timeout: float | None = None,
    ):
        self.jobs = resolve_jobs(jobs)
        self.chunksize = chunksize
        self.start_method = start_method
        self.on_error = on_error
        self.max_retries = max_retries
        self.retry_policy = retry_policy
        self.timeout = timeout

    def _opts(self) -> dict:
        return dict(
            jobs=self.jobs,
            chunksize=self.chunksize,
            start_method=self.start_method,
            on_error=self.on_error,
            max_retries=self.max_retries,
            retry_policy=self.retry_policy,
            timeout=self.timeout,
        )

    def map(self, fn: Callable[[T], R], items: Iterable[T], **overrides):
        return parallel_map(fn, items, **{**self._opts(), **overrides})

    def map_unordered(self, fn: Callable[[T], R], items: Iterable[T], **overrides):
        return parallel_map(
            fn, items, ordered=False, **{**self._opts(), **overrides}
        )
