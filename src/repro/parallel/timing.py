"""Wall-clock accounting for parallel grids.

Every parallelized surface (zoo builds, experiment grids) records one
:class:`CellTiming` per unit of work and wraps them in a
:class:`GridTiming` carrying the grid's end-to-end wall clock, so the
perf trajectory of the execution engine is measured, not guessed:
``cell_seconds / wall_seconds`` estimates the achieved parallel speedup.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator


@dataclass(frozen=True)
class CellTiming:
    """Wall clock of one unit of work (one artifact, one eval cell)."""

    key: str
    seconds: float
    cached: bool = False  # satisfied from cache rather than computed


@dataclass
class GridTiming:
    """Wall clock of one dispatched grid and its constituent cells.

    A grid run with ``on_error="collect"`` also carries its dead cells:
    ``failures`` holds the structured
    :class:`~repro.resilience.failures.CellFailure` records and
    ``manifest_path`` points at the persisted failure manifest (both
    empty/None for a fully successful run).
    """

    label: str
    jobs: int
    wall_seconds: float
    cells: list[CellTiming] = field(default_factory=list)
    failures: list = field(default_factory=list)
    manifest_path: str | None = None

    @property
    def degraded(self) -> bool:
        """True when the grid completed without some of its cells."""
        return bool(self.failures)

    @property
    def cell_seconds(self) -> float:
        """Total compute inside cells (≥ wall_seconds when parallel)."""
        return float(sum(c.seconds for c in self.cells))

    @property
    def computed_cells(self) -> list[CellTiming]:
        """Cells that actually ran (cache hits are ≈0 s probes)."""
        return [c for c in self.cells if not c.cached]

    @property
    def computed_seconds(self) -> float:
        """Total compute inside non-cached cells."""
        return float(sum(c.seconds for c in self.computed_cells))

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of cells satisfied from cache (0 for an empty grid)."""
        return (
            sum(1 for c in self.cells if c.cached) / len(self.cells)
            if self.cells
            else 0.0
        )

    @property
    def throughput(self) -> float:
        """Computed (non-cached) cells per wall-clock second.

        Cache hits are excluded: counting ≈0 s probes as completed work
        would report a warm cache as a fast grid.
        """
        n = len(self.computed_cells)
        return n / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def speedup(self) -> float:
        """Achieved parallel speedup estimate (computed cell time / wall time).

        Only computed cells enter the numerator; mixing in cached cells
        would inflate the reported speedup whenever the cache is warm.
        """
        return (
            self.computed_seconds / self.wall_seconds if self.wall_seconds > 0 else 0.0
        )

    def record(self) -> "GridTiming":
        """Emit this grid's summary into the run ledger (no-op when
        observation is disabled); returns self so dispatch sites can chain
        ``GridTiming(...).record()``."""
        # Lazy import: repro.parallel is imported during repro.observe's
        # own bootstrap path (via the pool), so a module-level import here
        # would be circular.
        from repro import observe

        observe.event(
            "grid",
            label=self.label,
            jobs=self.jobs,
            wall_seconds=self.wall_seconds,
            cells=len(self.cells),
            computed=len(self.computed_cells),
            cache_hit_rate=self.cache_hit_rate,
            speedup=self.speedup,
            failed=len(self.failures),
        )
        return self

    def summary(self) -> str:
        degraded = (
            f", {len(self.failures)} FAILED" if self.failures else ""
        )
        return (
            f"{self.label}: {len(self.cells)} cells "
            f"({len(self.computed_cells)} computed, "
            f"hit rate {self.cache_hit_rate:.0%}{degraded}) in {self.wall_seconds:.2f}s "
            f"(jobs={self.jobs}, {self.throughput:.2f} cells/s, "
            f"speedup≈{self.speedup:.2f}x)"
        )


@contextmanager
def stopwatch() -> Iterator[Callable[[], float]]:
    """Yield a callable returning the elapsed seconds since entry."""
    t0 = time.perf_counter()
    yield lambda: time.perf_counter() - t0


def grid_timing(
    label: str, jobs: int, wall_seconds: float, cells: list[CellTiming]
) -> GridTiming:
    """Convenience constructor mirroring the dispatch-site call shape."""
    return GridTiming(label=label, jobs=jobs, wall_seconds=wall_seconds, cells=cells)
