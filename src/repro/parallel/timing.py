"""Wall-clock accounting for parallel grids.

Every parallelized surface (zoo builds, experiment grids) records one
:class:`CellTiming` per unit of work and wraps them in a
:class:`GridTiming` carrying the grid's end-to-end wall clock, so the
perf trajectory of the execution engine is measured, not guessed:
``cell_seconds / wall_seconds`` estimates the achieved parallel speedup.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator


@dataclass(frozen=True)
class CellTiming:
    """Wall clock of one unit of work (one artifact, one eval cell)."""

    key: str
    seconds: float
    cached: bool = False  # satisfied from cache rather than computed


@dataclass
class GridTiming:
    """Wall clock of one dispatched grid and its constituent cells."""

    label: str
    jobs: int
    wall_seconds: float
    cells: list[CellTiming] = field(default_factory=list)

    @property
    def cell_seconds(self) -> float:
        """Total compute inside cells (≥ wall_seconds when parallel)."""
        return float(sum(c.seconds for c in self.cells))

    @property
    def throughput(self) -> float:
        """Completed cells per wall-clock second."""
        return len(self.cells) / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def speedup(self) -> float:
        """Achieved parallel speedup estimate (cell time / wall time)."""
        return self.cell_seconds / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def summary(self) -> str:
        return (
            f"{self.label}: {len(self.cells)} cells in {self.wall_seconds:.2f}s "
            f"(jobs={self.jobs}, {self.throughput:.2f} cells/s, "
            f"speedup≈{self.speedup:.2f}x)"
        )


@contextmanager
def stopwatch() -> Iterator[Callable[[], float]]:
    """Yield a callable returning the elapsed seconds since entry."""
    t0 = time.perf_counter()
    yield lambda: time.perf_counter() - t0


def grid_timing(
    label: str, jobs: int, wall_seconds: float, cells: list[CellTiming]
) -> GridTiming:
    """Convenience constructor mirroring the dispatch-site call shape."""
    return GridTiming(label=label, jobs=jobs, wall_seconds=wall_seconds, cells=cells)
