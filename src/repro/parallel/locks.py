"""Cache coordination: per-artifact file locks and atomic publication.

Concurrent zoo workers (several processes racing on the same cached
artifact) need two guarantees:

- **mutual exclusion** while an artifact is being trained, so the same
  (task, model, method, repetition) is never trained twice — provided by
  :class:`FileLock`, an advisory inter-process lock backed by
  ``fcntl.flock`` where available (released by the kernel even if the
  holder crashes) with an ``O_EXCL`` spin-lock fallback elsewhere;
- **atomic publication**, so a reader never observes a half-written
  archive — provided by :func:`atomic_write`, which stages writes to a
  temporary file in the destination directory and promotes it with
  ``os.replace`` (atomic on POSIX within one filesystem).
"""

from __future__ import annotations

import os
import tempfile
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

try:  # pragma: no cover - platform probe
    import fcntl

    _HAVE_FLOCK = True
except ImportError:  # pragma: no cover - non-POSIX fallback
    _HAVE_FLOCK = False


class LockTimeout(TimeoutError):
    """Raised when a :class:`FileLock` cannot be acquired in time."""


class FileLock:
    """Advisory inter-process lock on a filesystem path.

    Not reentrant.  The lock file itself is left in place after release
    (unlinking a lock file while another process holds its descriptor
    re-introduces the race the lock exists to prevent); lock files are
    zero-byte ``*.lock`` siblings of the artifact they guard.
    """

    def __init__(
        self,
        path: str | Path,
        timeout: float | None = None,
        poll_interval: float = 0.05,
    ):
        self.path = Path(path)
        self.timeout = timeout
        self.poll_interval = poll_interval
        self._fd: int | None = None

    @property
    def held(self) -> bool:
        return self._fd is not None

    def acquire(self) -> "FileLock":
        if self._fd is not None:
            raise RuntimeError(f"lock {self.path} already held by this object")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        deadline = None if self.timeout is None else time.monotonic() + self.timeout
        if _HAVE_FLOCK:
            fd = os.open(self.path, os.O_CREAT | os.O_RDWR, 0o644)
            while True:
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                    break
                except OSError:
                    if deadline is not None and time.monotonic() >= deadline:
                        os.close(fd)
                        raise LockTimeout(f"timed out waiting for {self.path}")
                    time.sleep(self.poll_interval)
            self._fd = fd
        else:  # pragma: no cover - exercised only on non-POSIX platforms
            while True:
                try:
                    self._fd = os.open(
                        self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644
                    )
                    break
                except FileExistsError:
                    if deadline is not None and time.monotonic() >= deadline:
                        raise LockTimeout(f"timed out waiting for {self.path}")
                    time.sleep(self.poll_interval)
        # Fault injection: may hold the freshly acquired lock to starve
        # concurrent waiters (no-op unless chaos is enabled).  Imported
        # lazily — chaos pulls in repro.observe, which must stay
        # importable before this module finishes loading.
        from repro.resilience import chaos

        chaos.on_lock_acquired(self.path)
        return self

    def release(self) -> None:
        if self._fd is None:
            return
        fd, self._fd = self._fd, None
        if _HAVE_FLOCK:
            fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        else:  # pragma: no cover
            os.close(fd)
            try:
                self.path.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


def artifact_lock(path: str | Path, timeout: float | None = None) -> FileLock:
    """The lock guarding one cached artifact (a ``.lock`` sibling of it)."""
    path = Path(path)
    return FileLock(path.with_name(path.name + ".lock"), timeout=timeout)


def fsync_path(path: str | Path) -> None:
    """Flush ``path``'s contents to stable storage (no-op if unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without file fsync access
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without fsync support
        pass
    finally:
        os.close(fd)


def fsync_dir(path: str | Path) -> None:
    """Flush a directory entry table to stable storage.

    After ``os.replace`` promotes an artifact, the *data* is durable once
    the file was fsynced — but the rename itself lives in the parent
    directory, which has its own write-back cache.  Without this second
    fsync a power loss can resurface the old name (or no name at all)
    even though the publish "succeeded".  Directories cannot be opened
    for reading on some platforms (Windows); there this is a no-op.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. Windows
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir fsync
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_write(path: str | Path, durable: bool = True) -> Iterator[Path]:
    """Yield a temporary path that is atomically promoted to ``path``.

    The temporary file lives in the destination directory so the final
    ``os.replace`` never crosses filesystems.  On any error the temp file
    is removed and ``path`` is left exactly as it was.

    With ``durable=True`` (the default) the staged file is fsynced before
    the rename and the parent directory is fsynced after it, so a
    successfully published artifact or journal entry survives power loss
    — not just process crash.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    os.close(fd)
    tmp = Path(tmp_name)
    try:
        yield tmp
        if durable:
            fsync_path(tmp)
        os.replace(tmp, path)
        if durable:
            fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
