"""Process-parallel execution engine.

The reproduction's dominant costs — training the model zoo and walking
(repetition × distribution) evaluation grids — are embarrassingly
parallel.  This package provides the three layers every dispatch site
composes:

- :mod:`repro.parallel.pool` — a spawn-safe, fault-tolerant worker pool
  (:func:`parallel_map`, ``REPRO_NUM_WORKERS`` / ``--jobs`` resolution,
  traceback-preserving error propagation, bit-identical serial fallback,
  per-cell retry with backoff, deadlines with hung-worker replacement,
  and ``on_error="collect"`` graceful degradation — see
  :mod:`repro.resilience`);
- :mod:`repro.parallel.locks` — per-artifact file locks and atomic
  write-temp-then-replace publication so concurrent workers never train
  the same artifact twice nor observe half-written archives;
- :mod:`repro.parallel.timing` — per-cell and per-grid wall-clock
  records surfaced in results and benchmarks.
"""

from repro.parallel.locks import (
    FileLock,
    LockTimeout,
    artifact_lock,
    atomic_write,
    fsync_dir,
    fsync_path,
)
from repro.parallel.pool import (
    EXECUTOR_ENV,
    EXECUTORS,
    JOBS_ENV,
    START_METHOD_ENV,
    MapOutcome,
    WorkerError,
    WorkerPool,
    default_chunksize,
    parallel_map,
    resolve_executor,
    resolve_jobs,
    resolve_start_method,
)
from repro.parallel.timing import CellTiming, GridTiming, grid_timing, stopwatch

__all__ = [
    "FileLock",
    "LockTimeout",
    "artifact_lock",
    "atomic_write",
    "fsync_dir",
    "fsync_path",
    "EXECUTOR_ENV",
    "EXECUTORS",
    "JOBS_ENV",
    "START_METHOD_ENV",
    "MapOutcome",
    "WorkerError",
    "WorkerPool",
    "default_chunksize",
    "parallel_map",
    "resolve_executor",
    "resolve_jobs",
    "resolve_start_method",
    "CellTiming",
    "GridTiming",
    "grid_timing",
    "stopwatch",
]
