"""Pooling and resampling modules."""

from __future__ import annotations

from repro.autograd import functional as F
from repro.nn.module import Module


class MaxPool2d(Module):
    """Max pooling over NCHW input."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x):
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class AvgPool2d(Module):
    """Average pooling over NCHW input."""

    def __init__(self, kernel_size: int, stride: int | None = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x):
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def extra_repr(self) -> str:
        return f"kernel_size={self.kernel_size}, stride={self.stride}"


class GlobalAvgPool2d(Module):
    """Spatial mean: (N, C, H, W) -> (N, C)."""

    def forward(self, x):
        return F.global_avg_pool2d(x)


class UpsampleNearest2d(Module):
    """Nearest-neighbour upsampling by an integer factor."""

    def __init__(self, scale: int):
        super().__init__()
        self.scale = scale

    def forward(self, x):
        return F.upsample_nearest2d(x, self.scale)

    def extra_repr(self) -> str:
        return f"scale={self.scale}"
