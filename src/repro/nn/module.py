"""Base :class:`Module` and :class:`Parameter` classes.

A :class:`Module` registers parameters, numpy buffers, and child modules
automatically on attribute assignment, and exposes the traversal,
state-dict, and train/eval machinery the rest of the library builds on.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

import numpy as np

from repro.autograd.tensor import Tensor


class Parameter(Tensor):
    """A trainable tensor; modules collect these automatically."""

    def __init__(self, data, requires_grad: bool = True, name: str | None = None):
        super().__init__(data, requires_grad=requires_grad, name=name)


class Module:
    """Base class for all neural-network modules."""

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_buffers", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "_forward_hooks", {})
        object.__setattr__(self, "training", True)

    # --------------------------------------------------------- registration
    def __setattr__(self, name: str, value) -> None:
        params = self.__dict__.get("_parameters")
        if params is None:
            raise RuntimeError(
                "Module.__init__() must be called before assigning attributes"
            )
        for registry in (self._parameters, self._buffers, self._modules):
            registry.pop(name, None)
        if isinstance(value, Parameter):
            params[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register non-trainable state (running stats, prune masks)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Replace an existing buffer's contents (keeps registration)."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r}")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # ------------------------------------------------------------ traversal
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, module in self.named_modules():
            yield module

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for module_name, module in self.named_modules(prefix):
            for name, param in module._parameters.items():
                yield (f"{module_name}.{name}" if module_name else name), param

    def parameters(self) -> Iterator[Parameter]:
        for _, param in self.named_parameters():
            yield param

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for module_name, module in self.named_modules(prefix):
            for name, buf in module._buffers.items():
                yield (f"{module_name}.{name}" if module_name else name), buf

    def apply(self, fn: Callable[["Module"], None]) -> "Module":
        for module in self.modules():
            fn(module)
        return self

    # ------------------------------------------------------------ state I/O
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({name: b.copy() for name, b in self.named_buffers()})
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = {
            name: (module, local)
            for module_name, module in self.named_modules()
            for local in module._buffers
            for name in [f"{module_name}.{local}" if module_name else local]
        }
        missing = (set(own_params) | set(own_buffers)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffers))
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch; missing={sorted(missing)} unexpected={sorted(unexpected)}"
            )
        for name, param in own_params.items():
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.shape:
                raise ValueError(
                    f"shape mismatch for {name}: {value.shape} vs {param.shape}"
                )
            param.data = value.copy()
        for name, (module, local) in own_buffers.items():
            value = np.asarray(state[name])
            current = module._buffers[local]
            if value.shape != current.shape:
                # A wrong-shaped mask or BN running stat comes from a
                # different architecture; installing it silently corrupts
                # every downstream forward pass.
                raise ValueError(
                    f"shape mismatch for buffer {name}: {value.shape} vs {current.shape}"
                )
            module.set_buffer(local, value.copy())
        for module in self.modules():
            sync = getattr(module, "_sync_mask_state", None)
            if sync is not None:
                sync()

    # ----------------------------------------------------------------- mode
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------- training
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def num_parameters(self, trainable_only: bool = False) -> int:
        return sum(
            p.size
            for p in self.parameters()
            if not trainable_only or p.requires_grad
        )

    # ------------------------------------------------------------- forward
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        out = self.forward(*args, **kwargs)
        for hook in list(self._forward_hooks.values()):
            hook(self, args, out)
        return out

    def register_forward_hook(self, hook: Callable) -> Callable[[], None]:
        """Register ``hook(module, inputs, output)``; returns a remover.

        Used by data-informed pruning methods (SiPP, PFP) to capture layer
        input activations on a sample batch.
        """
        key = object()
        self._forward_hooks[key] = hook

        def remove() -> None:
            self._forward_hooks.pop(key, None)

        return remove

    def extra_repr(self) -> str:
        return ""

    def __repr__(self) -> str:
        lines = [f"{type(self).__name__}({self.extra_repr()}"]
        for name, child in self._modules.items():
            child_repr = repr(child).replace("\n", "\n  ")
            lines.append(f"  ({name}): {child_repr}")
        if len(lines) == 1:
            return lines[0] + ")"
        return "\n".join(lines) + "\n)"


@contextmanager
def preserve_state(module: Module) -> Iterator[Module]:
    """Snapshot ``module``'s state on entry and restore it on exit.

    Curve and excess-error evaluation swap checkpoint weights into a
    shared model via :meth:`Module.load_state_dict`; wrapping the sweep in
    this context guarantees the caller gets its model back bit-identical —
    parameters, buffers, and masks — even when evaluation raises.
    """
    snapshot = module.state_dict()
    try:
        yield module
    finally:
        module.load_state_dict(snapshot)
