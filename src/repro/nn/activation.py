"""Stateless activation modules."""

from __future__ import annotations

from repro.nn.module import Module


class ReLU(Module):
    """Rectified linear unit."""

    def forward(self, x):
        return x.relu()


class Tanh(Module):
    """Hyperbolic tangent."""

    def forward(self, x):
        return x.tanh()


class Sigmoid(Module):
    """Logistic sigmoid."""

    def forward(self, x):
        return x.sigmoid()
