"""Neural-network modules (the ``torch.nn`` analog).

Modules own :class:`Parameter` tensors and numpy buffers, support recursive
traversal / state dicts, and — because this library exists to study pruning —
every weight-bearing layer carries a binary ``weight_mask`` buffer that the
forward pass applies multiplicatively, so masked weights receive zero
gradient during retraining.
"""

from repro.nn.module import Module, Parameter, preserve_state
from repro.nn.container import ModuleList, Sequential
from repro.nn.linear import Linear
from repro.nn.conv import Conv2d
from repro.nn.norm import BatchNorm1d, BatchNorm2d
from repro.nn.activation import ReLU, Sigmoid, Tanh
from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d, UpsampleNearest2d
from repro.nn.layers import Dropout, Flatten, Identity
from repro.nn.losses import CrossEntropyLoss
from repro.nn.flops import count_flops, flop_reduction
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "preserve_state",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "UpsampleNearest2d",
    "Flatten",
    "Identity",
    "Dropout",
    "CrossEntropyLoss",
    "count_flops",
    "flop_reduction",
    "init",
]
