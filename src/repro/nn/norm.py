"""Batch normalization layers."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter


class _BatchNorm(Module):
    """Shared implementation for 1-D / 2-D batch norm."""

    _expected_ndim: int

    def __init__(self, num_features: int, momentum: float = 0.1, eps: float = 1e-5):
        super().__init__()
        self.num_features = num_features
        self.momentum = momentum
        self.eps = eps
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x):
        if x.ndim != self._expected_ndim:
            raise ValueError(
                f"{type(self).__name__} expects {self._expected_ndim}-D input, got {x.shape}"
            )
        return F.batch_norm(
            x,
            self.weight,
            self.bias,
            self.running_mean,
            self.running_var,
            training=self.training,
            momentum=self.momentum,
            eps=self.eps,
        )

    def extra_repr(self) -> str:
        return f"{self.num_features}, momentum={self.momentum}, eps={self.eps}"


class BatchNorm2d(_BatchNorm):
    """Per-channel batch norm over NCHW input."""

    _expected_ndim = 4


class BatchNorm1d(_BatchNorm):
    """Per-feature batch norm over NC input."""

    _expected_ndim = 2
