"""Loss modules."""

from __future__ import annotations

from repro.autograd import functional as F
from repro.nn.module import Module


class CrossEntropyLoss(Module):
    """Mean cross entropy over logits.

    Accepts either classification logits ``(N, K)`` with targets ``(N,)`` or
    dense segmentation logits ``(N, K, H, W)`` with targets ``(N, H, W)``;
    the dense case is flattened to per-pixel classification.
    """

    def forward(self, logits, targets):
        if logits.ndim == 4:
            n, k, h, w = logits.shape
            logits = logits.transpose(0, 2, 3, 1).reshape(n * h * w, k)
            targets = targets.reshape(-1)
        return F.cross_entropy(logits, targets)
