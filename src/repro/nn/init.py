"""Weight initialization schemes (He / Xavier), matching the defaults the
original architectures used."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_rng


def _fan(shape: tuple[int, ...]) -> tuple[int, int]:
    """(fan_in, fan_out) for linear ``(out, in)`` or conv ``(F, C, KH, KW)``."""
    if len(shape) == 2:
        return shape[1], shape[0]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def kaiming_normal(
    shape: tuple[int, ...], rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """He-normal init (gain for ReLU) as float32."""
    fan_in, _ = _fan(shape)
    std = np.sqrt(2.0 / fan_in)
    return (as_rng(rng).standard_normal(shape) * std).astype(np.float32)


def kaiming_uniform(
    shape: tuple[int, ...], rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """He-uniform init as float32."""
    fan_in, _ = _fan(shape)
    bound = np.sqrt(6.0 / fan_in)
    return as_rng(rng).uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_uniform(
    shape: tuple[int, ...], rng: np.random.Generator | int | None = None
) -> np.ndarray:
    """Glorot-uniform init as float32."""
    fan_in, fan_out = _fan(shape)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return as_rng(rng).uniform(-bound, bound, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
