"""Miscellaneous structural layers."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.nn.module import Module
from repro.utils.rng import as_rng


class Flatten(Module):
    """Collapse all non-batch dimensions."""

    def forward(self, x):
        return x.reshape(x.shape[0], -1)


class Identity(Module):
    """Pass-through module (used as a no-op shortcut)."""

    def forward(self, x):
        return x


class Dropout(Module):
    """Inverted dropout; active only in training mode."""

    def __init__(self, p: float = 0.5, rng: np.random.Generator | int | None = None):
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self.rng = as_rng(rng)

    def forward(self, x):
        return F.dropout(x, self.p, self.rng, training=self.training)

    def extra_repr(self) -> str:
        return f"p={self.p}"
