"""Fully connected layer."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.prunable import PrunableWeightMixin
from repro.utils.rng import as_rng


class Linear(PrunableWeightMixin, Module):
    """Affine layer ``y = x W^T + b`` with a prunable weight.

    Parameters
    ----------
    in_features, out_features:
        Input / output dimensionality.
    bias:
        Whether to learn an additive bias.
    rng:
        Seed or generator for weight initialization.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), as_rng(rng)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self._init_mask()

    def forward(self, x):
        return F.linear(x, self.masked_weight, self.bias)

    def extra_repr(self) -> str:
        return f"in_features={self.in_features}, out_features={self.out_features}"
