"""FLOP accounting for (pruned) models.

The paper reports FR — the relative reduction in inference FLOPs of a
pruned network (Tables 4/6/8).  We count multiply–accumulate-dominated
FLOPs: unstructurally pruned weights are dead multiplies, so a layer's
cost scales with the number of *unmasked* weights.

A dummy forward pass traces output spatial sizes; :class:`Conv2d` records
``last_output_hw`` during forward.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.module import Module
from repro.nn.norm import _BatchNorm


def count_flops(
    model: Module, input_shape: tuple[int, ...], dense: bool = False
) -> int:
    """Total forward FLOPs for one batch element of ``input_shape`` (C, H, W) or (F,).

    ``dense=True`` ignores prune masks and reports the unpruned cost, so
    FR can be accounted without cloning the model and resetting its masks.
    """
    was_training = model.training
    model.eval()
    dummy = Tensor(np.zeros((1, *input_shape), dtype=np.float32))
    with no_grad():
        model(dummy)
    model.train(was_training)

    total = 0
    for module in model.modules():
        if isinstance(module, Conv2d):
            if module.last_output_hw is None:
                raise RuntimeError("conv layer was not reached by the trace forward")
            oh, ow = module.last_output_hw
            nnz = module.weight.size if dense else int(module.weight_mask.sum())
            total += 2 * nnz * oh * ow
            if module.bias is not None:
                total += module.out_channels * oh * ow
        elif isinstance(module, Linear):
            nnz = module.weight.size if dense else int(module.weight_mask.sum())
            total += 2 * nnz
            if module.bias is not None:
                total += module.out_features
        elif isinstance(module, _BatchNorm):
            # scale + shift per feature map element; spatial extent unknown
            # for 2-D BN without tracing, so approximate with feature count.
            total += 2 * module.num_features
    return total


def pruned_flops_by_layer(
    model: Module, input_shape: tuple[int, ...]
) -> dict[str, int]:
    """FLOPs removed by each layer's mask (independent of :func:`count_flops`).

    Cross-checks FR accounting: the sum of these per-layer reductions must
    equal ``count_flops(dense=True) - count_flops()``.
    """
    was_training = model.training
    model.eval()
    dummy = Tensor(np.zeros((1, *input_shape), dtype=np.float32))
    with no_grad():
        model(dummy)
    model.train(was_training)

    removed: dict[str, int] = {}
    for name, module in model.named_modules():
        if isinstance(module, Conv2d):
            oh, ow = module.last_output_hw
            removed[name] = 2 * module.num_pruned * oh * ow
        elif isinstance(module, Linear):
            removed[name] = 2 * module.num_pruned
    return removed


def flop_reduction(
    pruned: Module, unpruned: Module, input_shape: tuple[int, ...]
) -> float:
    """FR: fraction of FLOPs removed by pruning, in [0, 1]."""
    base = count_flops(unpruned, input_shape)
    now = count_flops(pruned, input_shape)
    if base <= 0:
        raise ValueError("unpruned model reports zero FLOPs")
    return 1.0 - now / base
