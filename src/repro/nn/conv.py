"""2-D convolution layer."""

from __future__ import annotations

import numpy as np

from repro.autograd import functional as F
from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.nn.prunable import PrunableWeightMixin
from repro.utils.rng import as_rng


class Conv2d(PrunableWeightMixin, Module):
    """Convolution over NCHW input with a prunable weight.

    Records the spatial size of its last output in ``last_output_hw`` so
    that :mod:`repro.nn.flops` can account FLOPs without re-tracing.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | int | None = None,
    ):
        super().__init__()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_normal(
                (out_channels, in_channels, kernel_size, kernel_size), as_rng(rng)
            )
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self.last_output_hw: tuple[int, int] | None = None
        self._init_mask()

    def forward(self, x):
        out = F.conv2d(
            x, self.masked_weight, self.bias, stride=self.stride, padding=self.padding
        )
        self.last_output_hw = out.shape[2:]
        return out

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
            f"stride={self.stride}, padding={self.padding}"
        )
