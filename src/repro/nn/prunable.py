"""Shared machinery for weight-bearing, prunable layers.

Both :class:`~repro.nn.linear.Linear` and :class:`~repro.nn.conv.Conv2d`
carry a binary ``weight_mask`` buffer the same shape as ``weight``.  The
forward pass multiplies the weight by its mask, so

- pruned weights contribute nothing to the output, and
- their gradient is zero during retraining (the mask factors into the
  chain rule), which is exactly the semantics of Algorithm 1 in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor


class PrunableWeightMixin:
    """Adds ``weight_mask`` handling; host must define ``self.weight``."""

    def _init_mask(self) -> None:
        self.register_buffer("weight_mask", np.ones(self.weight.shape, dtype=np.float32))
        self._mask_active = False

    def set_weight_mask(self, mask: np.ndarray) -> None:
        """Install a binary mask and zero the pruned weights in place."""
        mask = np.asarray(mask, dtype=np.float32)
        if mask.shape != self.weight.shape:
            raise ValueError(
                f"mask shape {mask.shape} != weight shape {self.weight.shape}"
            )
        if not np.isin(mask, (0.0, 1.0)).all():
            raise ValueError("mask must be binary")
        self.set_buffer("weight_mask", mask)
        self.weight.data *= mask
        self._mask_active = bool((mask == 0).any())

    def reset_weight_mask(self) -> None:
        """Remove all pruning from this layer."""
        self.set_buffer("weight_mask", np.ones(self.weight.shape, dtype=np.float32))
        self._mask_active = False

    @property
    def masked_weight(self) -> Tensor:
        """The weight with the prune mask applied (graph-connected)."""
        if self._mask_active:
            return self.weight * Tensor(self.weight_mask)
        return self.weight

    @property
    def num_pruned(self) -> int:
        return int((self.weight_mask == 0).sum())

    def mask_violations(self) -> int:
        """Number of weights that disagree with their mask (``w != w * mask``).

        Zero on any healthy layer: :meth:`set_weight_mask` zeroes pruned
        weights in place, and the masked gradient keeps them at zero during
        retraining.  A nonzero count means the artifact was corrupted (or
        the weights were mutated behind the mask's back).
        """
        return int((self.weight.data != self.weight.data * self.weight_mask).sum())

    @property
    def prune_ratio(self) -> float:
        return self.num_pruned / self.weight_mask.size

    def _sync_mask_state(self) -> None:
        """Recompute cached mask state (after ``load_state_dict``)."""
        self._mask_active = bool((self.weight_mask == 0).any())
