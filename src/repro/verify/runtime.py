"""Opt-in runtime verification hooks (``REPRO_VERIFY=1``).

The hot paths (PRUNERETRAIN steps, curve evaluation, zoo cache hits) call
these no-op-by-default hooks; setting ``REPRO_VERIFY=1`` turns each into a
cheap invariant sweep that raises :class:`VerificationError` at the exact
step that broke, instead of letting a mask/accounting bug propagate into
every downstream table.  Only O(weights) checks run here — differential
oracles (determinism, jobs equivalence) stay in the test tiers and the
``python -m repro verify`` audit.
"""

from __future__ import annotations

import os

from repro.nn.module import Module
from repro.verify.invariants import (
    check_curve_sanity,
    check_mask_weight_consistency,
    check_prune_accounting,
    check_state_consistency,
    check_structured_masks,
)
from repro.verify.report import VerificationReport

ENV_VAR = "REPRO_VERIFY"
_FALSY = ("", "0", "false", "off", "no")


def verify_enabled() -> bool:
    """True when the current process opted into runtime verification."""
    return os.environ.get(ENV_VAR, "").strip().lower() not in _FALSY


def _observe_report(report: VerificationReport) -> None:
    """Mirror one verification sweep into the run ledger (if observing)."""
    from repro import observe

    observe.event(
        "verify",
        subject=report.subject,
        checks=len(report.results),
        passed=report.passed,
    )


def verify_prune_step(
    model: Module,
    achieved_ratio: float,
    target_ratio: float,
    method_name: str,
    structured: bool,
    step: int,
) -> None:
    """After one prune step: masks consistent, accounting matches the
    ratio the method just reported.  Raises on failure when enabled."""
    if not verify_enabled():
        return
    report = VerificationReport(
        subject=f"{method_name} step {step} (target {target_ratio:.3f})"
    )
    check_mask_weight_consistency(model, report=report)
    check_prune_accounting(model, reported_ratio=achieved_ratio, report=report)
    if structured:
        check_structured_masks(model, report=report)
    _observe_report(report)
    report.raise_if_failed()


def verify_retrained(model: Module, method_name: str, step: int) -> None:
    """After retraining: pruned weights stayed pruned (the mask factored
    into the gradient, so nothing revived)."""
    if not verify_enabled():
        return
    report = VerificationReport(subject=f"{method_name} retrain step {step}")
    check_mask_weight_consistency(model, report=report)
    _observe_report(report)
    report.raise_if_failed()


def verify_run_curve(run) -> None:
    """At the end of :meth:`PruneRetrain.run`: the recorded curve is sane."""
    if not verify_enabled():
        return
    report = VerificationReport(subject=f"PruneRun[{run.method_name}]")
    check_curve_sanity(
        run.ratios, run.test_errors, run.parent_test_error, report=report
    )
    _observe_report(report)
    report.raise_if_failed()


def verify_curve(curve) -> None:
    """After :func:`~repro.analysis.prune_potential.evaluate_curve`."""
    if not verify_enabled():
        return
    report = VerificationReport(subject=f"curve[{curve.distribution}]")
    check_curve_sanity(
        curve.ratios, curve.errors, curve.parent_error, report=report
    )
    _observe_report(report)
    report.raise_if_failed()


def verify_curve_result(result) -> None:
    """After a curve experiment: per-repetition curves sane, FR in [0, 1]."""
    if not verify_enabled():
        return
    import numpy as np

    label = f"{result.task_name}/{result.model_name}/{result.method_name}"
    report = VerificationReport(subject=f"prune_curve[{label}]")
    for rep in range(result.errors.shape[0]):
        check_curve_sanity(
            result.ratios,
            result.errors[rep],
            float(result.parent_errors[rep]),
            report=report,
            label=f"rep{rep}",
        )
    frs = np.asarray(result.flop_reductions, dtype=float)
    report.add(
        "flop_reduction_range",
        bool(np.isfinite(frs).all() and ((frs >= 0) & (frs <= 1)).all()),
        context={"min": float(frs.min()), "max": float(frs.max())},
    )
    _observe_report(report)
    report.raise_if_failed()


def verify_loaded_run(run, source: str) -> None:
    """On a zoo cache hit: the artifact we are about to trust is healthy."""
    if not verify_enabled():
        return
    report = VerificationReport(subject=f"cached run {source}")
    for i, ckpt in enumerate(run.checkpoints):
        ckpt_report = check_state_consistency(
            ckpt.state, reported_ratio=ckpt.achieved_ratio
        )
        for result in ckpt_report.results:
            result.name = f"ckpt{i}.{result.name}"
        report.results.extend(ckpt_report.results)
    check_curve_sanity(
        run.ratios, run.test_errors, run.parent_test_error, report=report
    )
    _observe_report(report)
    report.raise_if_failed()
