"""Invariant checkers: machine-checkable facts every healthy artifact obeys.

Three families, by what they need access to:

- **model invariants** need a live :class:`~repro.nn.module.Module` —
  mask/weight consistency, sparsity and FLOP accounting, structured-prune
  shape propagation;
- **state invariants** need only a raw state dict, so they run against any
  cached ``.npz`` artifact without knowing its architecture;
- **curve invariants** need only the numbers of a prune-accuracy curve —
  range and monotonicity sanity for ratios, errors, and prune potential.

Each checker appends to (and returns) a :class:`VerificationReport`; none
raises directly, so audits can keep going past the first failure.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.nn.conv import Conv2d
from repro.nn.flops import count_flops, pruned_flops_by_layer
from repro.nn.module import Module
from repro.pruning.mask import (
    model_prune_ratio,
    prunable_layers,
    pruned_weights,
    structured_prunable_layers,
    total_prunable_weights,
)
from repro.verify.report import VerificationReport

RATIO_ATOL = 1e-6


def _report(report: VerificationReport | None, subject: str) -> VerificationReport:
    return report if report is not None else VerificationReport(subject=subject)


# ------------------------------------------------------------------ model


def check_mask_weight_consistency(
    model: Module, report: VerificationReport | None = None
) -> VerificationReport:
    """Every prunable layer: binary mask, mask shaped like weight, ``w == w * mask``."""
    report = _report(report, "model")
    for name, layer in prunable_layers(model):
        mask = layer.weight_mask
        report.add(
            f"mask_shape[{name}]",
            mask.shape == layer.weight.shape,
            context={"mask_shape": mask.shape, "weight_shape": layer.weight.shape},
        )
        report.add(
            f"mask_binary[{name}]",
            bool(np.isin(mask, (0.0, 1.0)).all()),
            context={"unique": np.unique(mask)[:8]},
        )
        violations = layer.mask_violations()
        report.add(
            f"mask_weight_consistency[{name}]",
            violations == 0,
            detail=f"{violations} weights disagree with mask" if violations else "",
            context={"violations": violations},
        )
    return report


def check_prune_accounting(
    model: Module,
    reported_ratio: float | None = None,
    report: VerificationReport | None = None,
) -> VerificationReport:
    """Sparsity bookkeeping: per-layer counts sum to the model ratio,
    which matches the ratio reported by the pruning method."""
    report = _report(report, "model")
    total = total_prunable_weights(model)
    pruned = pruned_weights(model)
    per_layer = sum(layer.num_pruned for _, layer in prunable_layers(model))
    report.add(
        "pruned_count_additivity",
        per_layer == pruned,
        context={"per_layer_sum": per_layer, "pruned_weights": pruned},
    )
    ratio = model_prune_ratio(model)
    report.add(
        "prune_ratio_range",
        0.0 <= ratio <= 1.0,
        context={"ratio": ratio},
    )
    report.add(
        "prune_ratio_accounting",
        abs(ratio - pruned / total) <= RATIO_ATOL,
        context={"ratio": ratio, "recomputed": pruned / total},
    )
    if reported_ratio is not None:
        report.add(
            "reported_ratio_matches",
            abs(ratio - reported_ratio) <= RATIO_ATOL,
            detail=f"model ratio {ratio:.6f} vs reported {reported_ratio:.6f}",
            context={"model_ratio": ratio, "reported": reported_ratio},
        )
    return report


def check_flop_accounting(
    model: Module,
    input_shape: tuple[int, ...],
    report: VerificationReport | None = None,
) -> VerificationReport:
    """FLOP counts agree between the mask-aware trace and dense-minus-pruned."""
    report = _report(report, "model")
    pruned_cost = count_flops(model, input_shape)
    dense_cost = count_flops(model, input_shape, dense=True)
    removed = sum(pruned_flops_by_layer(model, input_shape).values())
    report.add(
        "flops_positive",
        pruned_cost > 0 and dense_cost > 0,
        context={"pruned": pruned_cost, "dense": dense_cost},
    )
    report.add(
        "flops_dense_minus_pruned",
        dense_cost - pruned_cost == removed,
        detail=(
            f"dense {dense_cost} - pruned {pruned_cost} != removed {removed}"
            if dense_cost - pruned_cost != removed
            else ""
        ),
        context={"dense": dense_cost, "pruned": pruned_cost, "removed": removed},
    )
    fr = 1.0 - pruned_cost / dense_cost if dense_cost else float("nan")
    report.add("flop_reduction_range", 0.0 <= fr <= 1.0, context={"fr": fr})
    return report


def check_structured_masks(
    model: Module, report: VerificationReport | None = None
) -> VerificationReport:
    """Structured layers: masks are unions of whole input-channel columns
    and at least one channel survives per layer."""
    report = _report(report, "model")
    for name, layer in structured_prunable_layers(model):
        mask = layer.weight_mask
        per_channel = mask.sum(axis=(0, 2, 3))
        column = layer.out_channels * layer.kernel_size * layer.kernel_size
        aligned = bool(np.isin(per_channel, (0, column)).all())
        report.add(
            f"channel_aligned_mask[{name}]",
            aligned,
            detail="" if aligned else "mask prunes partial input channels",
            context={"per_channel_nnz": per_channel},
        )
        alive = int((per_channel > 0).sum())
        report.add(
            f"channels_alive[{name}]",
            alive >= 1,
            detail="" if alive else "all input channels pruned",
            context={"alive": alive, "in_channels": layer.in_channels},
        )
    return report


def _linear_chains(model: Module) -> list[list[tuple[str, Module]]]:
    """Flat forward chains of (name, module) from nested ``Sequential``s.

    Shape-propagation checks need to know which layer feeds which; that is
    only well-defined for purely sequential graphs, so branching modules
    (residual blocks) simply contribute no chain.
    """
    from repro.nn.container import Sequential

    chains: list[list[tuple[str, Module]]] = []

    def walk(module: Module, prefix: str) -> None:
        if isinstance(module, Sequential):
            chain: list[tuple[str, Module]] = []
            for name, child in module._modules.items():
                full = f"{prefix}.{name}" if prefix else name
                if isinstance(child, Sequential):
                    if chain:
                        chains.append(chain)
                        chain = []
                    walk(child, full)
                else:
                    chain.append((full, child))
            if chain:
                chains.append(chain)
        else:
            for name, child in module._modules.items():
                walk(child, f"{prefix}.{name}" if prefix else name)

    walk(model, "")
    return chains


def check_structured_shape_propagation(
    model: Module,
    probe: np.ndarray,
    report: VerificationReport | None = None,
    atol: float = 1e-6,
) -> VerificationReport:
    """Pruned input channels are genuinely dead upstream.

    For every Conv→(BN/activation/pool)→Conv chain, a fully masked input
    channel ``j`` of the downstream conv means the producing conv's filter
    ``j`` (and its BN statistics) can be physically removed; zeroing them
    must leave the model's output on ``probe`` bit-for-bit unchanged.  This
    is the shape-propagation contract a structured method must maintain to
    realize its FLOP savings as actual smaller layers.
    """
    from repro.autograd.tensor import Tensor, no_grad
    from repro.nn.activation import ReLU, Sigmoid, Tanh
    from repro.nn.layers import Dropout, Identity
    from repro.nn.norm import _BatchNorm
    from repro.nn.pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d, UpsampleNearest2d

    # Between producer and consumer, only modules that keep the channel
    # axis intact (one output channel per input channel) are allowed —
    # anything else and "filter j feeds channel j" no longer holds.
    channel_preserving = (
        _BatchNorm,
        ReLU,
        Tanh,
        Sigmoid,
        Dropout,
        Identity,
        MaxPool2d,
        AvgPool2d,
        GlobalAvgPool2d,
        UpsampleNearest2d,
    )

    report = _report(report, "model")
    structured = dict(structured_prunable_layers(model))
    chains = [c for c in _linear_chains(model) if c]
    if not chains:
        report.add(
            "structured_shape_propagation",
            True,
            detail="skipped: model has no purely sequential chain",
        )
        return report

    was_training = model.training
    model.eval()
    state = model.state_dict()
    try:
        with no_grad():
            baseline = model(Tensor(probe)).data.copy()
        checked = 0
        for chain in chains:
            for i, (name, module) in enumerate(chain):
                if name not in structured:
                    continue
                dead = np.flatnonzero(
                    module.weight_mask.sum(axis=(0, 2, 3)) == 0
                )
                if dead.size == 0:
                    continue
                # Nearest preceding conv in the chain produces our input;
                # every module in between must preserve the channel axis.
                producer = None
                producer_idx = None
                for j in range(i - 1, -1, -1):
                    candidate = chain[j][1]
                    if isinstance(candidate, Conv2d):
                        producer = candidate
                        producer_idx = j
                        break
                    if not isinstance(candidate, channel_preserving):
                        break
                if producer is None or producer.out_channels != module.in_channels:
                    continue
                producer.weight.data[dead] = 0.0
                if producer.bias is not None:
                    producer.bias.data[dead] = 0.0
                for _, mid in chain[producer_idx + 1 : i]:
                    if isinstance(mid, _BatchNorm):
                        if mid.num_features != module.in_channels:
                            continue
                        mid.weight.data[dead] = 0.0
                        mid.bias.data[dead] = 0.0
                        mid.set_buffer(
                            "running_mean",
                            np.where(
                                np.isin(np.arange(mid.num_features), dead),
                                0.0,
                                mid.running_mean,
                            ).astype(mid.running_mean.dtype),
                        )
                with no_grad():
                    zeroed = model(Tensor(probe)).data
                drift = float(np.abs(zeroed - baseline).max())
                report.add(
                    f"structured_shape_propagation[{name}]",
                    drift <= atol,
                    detail=(
                        f"zeroing {dead.size} dead producer filters moved the "
                        f"output by {drift:.3e}"
                        if drift > atol
                        else ""
                    ),
                    context={"dead_channels": dead.size, "drift": drift},
                )
                checked += 1
                model.load_state_dict(state)
        if checked == 0:
            report.add(
                "structured_shape_propagation",
                True,
                detail="skipped: no pruned channels on sequential chains",
            )
    finally:
        model.load_state_dict(state)
        model.train(was_training)
    return report


# ------------------------------------------------------------------ state


def mask_pairs(state: Mapping[str, np.ndarray]) -> list[tuple[str, np.ndarray, np.ndarray]]:
    """(prefix, weight, mask) triples found in a raw state dict."""
    pairs = []
    for key in sorted(state):
        if key.endswith(".weight_mask") or key == "weight_mask":
            prefix = key[: -len("weight_mask")].rstrip(".")
            weight_key = f"{prefix}.weight" if prefix else "weight"
            if weight_key in state:
                pairs.append((prefix or "<root>", state[weight_key], state[key]))
    return pairs


def check_state_consistency(
    state: Mapping[str, np.ndarray],
    reported_ratio: float | None = None,
    report: VerificationReport | None = None,
) -> VerificationReport:
    """Architecture-free invariants on a raw state dict.

    Works on any cached artifact: pairs each ``*.weight`` with its
    ``*.weight_mask`` sibling, checks binariness, shape, ``w == w * mask``,
    and (when the artifact recorded one) the achieved prune ratio.
    """
    report = _report(report, "state")
    pairs = mask_pairs(state)
    report.add(
        "has_prunable_state",
        bool(pairs),
        detail="" if pairs else "state dict has no (weight, weight_mask) pairs",
        context={"n_layers": len(pairs)},
    )
    total = 0
    pruned = 0
    for prefix, weight, mask in pairs:
        report.add(
            f"mask_shape[{prefix}]",
            mask.shape == weight.shape,
            context={"mask_shape": mask.shape, "weight_shape": weight.shape},
        )
        report.add(
            f"mask_binary[{prefix}]",
            bool(np.isin(mask, (0.0, 1.0)).all()),
        )
        violations = int((weight != weight * mask).sum())
        report.add(
            f"mask_weight_consistency[{prefix}]",
            violations == 0,
            detail=f"{violations} weights disagree with mask" if violations else "",
            context={"violations": violations},
        )
        total += mask.size
        pruned += int((mask == 0).sum())
    for key, value in state.items():
        report.add(
            f"finite[{key}]",
            bool(np.isfinite(value).all()) if np.issubdtype(
                np.asarray(value).dtype, np.floating
            ) else True,
        )
    if reported_ratio is not None and total:
        ratio = pruned / total
        report.add(
            "reported_ratio_matches",
            abs(ratio - reported_ratio) <= RATIO_ATOL,
            detail=f"state ratio {ratio:.6f} vs reported {reported_ratio:.6f}",
            context={"state_ratio": ratio, "reported": reported_ratio},
        )
    return report


# ------------------------------------------------------------------ curves


def check_curve_sanity(
    ratios: Sequence[float],
    errors: Sequence[float],
    parent_error: float,
    report: VerificationReport | None = None,
    label: str = "curve",
) -> VerificationReport:
    """Range/monotonicity sanity for one prune-accuracy curve.

    Achieved ratios must be finite, inside [0, 1), and non-decreasing
    (Algorithm 1 prunes cumulatively, so a later checkpoint can never be
    less pruned); all errors are rates in [0, 1].
    """
    report = _report(report, label)
    ratios = np.asarray(ratios, dtype=float)
    errors = np.asarray(errors, dtype=float)
    report.add(
        f"{label}_shapes_match",
        ratios.shape == errors.shape,
        context={"ratios": ratios.shape, "errors": errors.shape},
    )
    report.add(f"{label}_finite", bool(np.isfinite(ratios).all() and np.isfinite(errors).all()))
    report.add(
        f"{label}_ratio_range",
        bool(((ratios >= 0) & (ratios < 1)).all()),
        context={"min": ratios.min(initial=0.0), "max": ratios.max(initial=0.0)},
    )
    report.add(
        f"{label}_ratios_monotone",
        bool((np.diff(ratios) >= -RATIO_ATOL).all()),
        detail="achieved prune ratios decreased between checkpoints"
        if not (np.diff(ratios) >= -RATIO_ATOL).all()
        else "",
        context={"ratios": ratios},
    )
    report.add(
        f"{label}_error_range",
        bool(((errors >= 0) & (errors <= 1)).all()),
        context={"errors": errors},
    )
    report.add(
        f"{label}_parent_error_range",
        bool(0.0 <= parent_error <= 1.0) and bool(np.isfinite(parent_error)),
        context={"parent_error": parent_error},
    )
    return report


def check_potential_sanity(
    potential: float,
    ratios: Sequence[float],
    report: VerificationReport | None = None,
    label: str = "potential",
) -> VerificationReport:
    """Prune potential is a ratio: in [0, 1) and never above the best
    achieved ratio of the curve it was derived from (Definition 1)."""
    report = _report(report, label)
    ratios = np.asarray(ratios, dtype=float)
    report.add(
        f"{label}_range",
        bool(0.0 <= potential < 1.0),
        context={"potential": potential},
    )
    max_ratio = float(ratios.max(initial=0.0))
    report.add(
        f"{label}_bounded_by_curve",
        potential <= max_ratio + RATIO_ATOL,
        detail=f"potential {potential:.4f} exceeds max achieved ratio {max_ratio:.4f}"
        if potential > max_ratio + RATIO_ATOL
        else "",
        context={"potential": potential, "max_ratio": max_ratio},
    )
    return report
