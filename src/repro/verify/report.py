"""Structured results for verification checks.

Every checker in :mod:`repro.verify` appends :class:`CheckResult` rows to a
:class:`VerificationReport`; callers decide whether a failed report prints,
raises (:class:`VerificationError`), or lands in a JSON audit artifact.
Keeping the result structured — name, subject, detail, context numbers —
is what lets the CLI audit hundreds of cached artifacts and still say
*which* invariant broke on *which* checkpoint.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Iterable


@dataclass
class CheckResult:
    """Outcome of one invariant or oracle check."""

    name: str
    passed: bool
    detail: str = ""
    context: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        status = "ok" if self.passed else "FAIL"
        suffix = f" — {self.detail}" if self.detail else ""
        return f"[{status}] {self.name}{suffix}"


@dataclass
class VerificationReport:
    """All check results for one subject (a model, artifact, or curve)."""

    subject: str
    results: list[CheckResult] = field(default_factory=list)

    def add(
        self,
        name: str,
        passed: bool,
        detail: str = "",
        context: dict[str, Any] | None = None,
    ) -> CheckResult:
        result = CheckResult(
            name=name, passed=bool(passed), detail=detail, context=dict(context or {})
        )
        self.results.append(result)
        return result

    def extend(self, other: "VerificationReport") -> "VerificationReport":
        self.results.extend(other.results)
        return self

    @property
    def passed(self) -> bool:
        return all(r.passed for r in self.results)

    @property
    def failures(self) -> list[CheckResult]:
        return [r for r in self.results if not r.passed]

    def summary(self) -> str:
        lines = [
            f"verify {self.subject}: "
            f"{len(self.results) - len(self.failures)}/{len(self.results)} checks passed"
        ]
        lines.extend(f"  {r}" for r in self.failures)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "subject": self.subject,
            "passed": self.passed,
            "results": [
                {
                    "name": r.name,
                    "passed": r.passed,
                    "detail": r.detail,
                    "context": _jsonable(r.context),
                }
                for r in self.results
            ],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def raise_if_failed(self) -> "VerificationReport":
        if not self.passed:
            raise VerificationError(self)
        return self


class VerificationError(RuntimeError):
    """A verification report with at least one failed check.

    Raised by the ``REPRO_VERIFY=1`` runtime hooks so a silent accounting
    bug fails fast at the step that introduced it instead of surfacing as
    an implausible table three experiments later.
    """

    def __init__(self, report: VerificationReport):
        self.report = report
        super().__init__(report.summary())


def merge_reports(
    subject: str, reports: Iterable[VerificationReport]
) -> VerificationReport:
    """Flatten per-artifact reports into one audit-level report."""
    merged = VerificationReport(subject=subject)
    for report in reports:
        for result in report.results:
            merged.results.append(
                CheckResult(
                    name=f"{report.subject}: {result.name}",
                    passed=result.passed,
                    detail=result.detail,
                    context=result.context,
                )
            )
    return merged


def _jsonable(value: Any) -> Any:
    """Best-effort conversion of context values for JSON reports."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and getattr(value, "size", None) == 1:
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)
