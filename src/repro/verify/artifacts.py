"""Audit cached zoo artifacts without knowing their architecture.

Both artifact kinds the zoo caches (parent states and PRUNERETRAIN runs)
are plain ``.npz`` archives of arrays + JSON metadata, so everything here
works from the raw state dicts: mask/weight consistency, recorded
prune-ratio accounting, curve sanity, and (``deep=True``) a save/load
round-trip through fresh temporary storage.  ``python -m repro verify``
is a thin CLI over :func:`audit_path`.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.utils.serialization import try_load_state
from repro.verify.invariants import (
    check_curve_sanity,
    check_state_consistency,
    mask_pairs,
)
from repro.verify.oracles import oracle_save_load_roundtrip
from repro.verify.report import VerificationReport, merge_reports


def find_artifacts(root: str | Path) -> list[Path]:
    """All ``.npz`` artifacts under ``root`` (or ``root`` itself if a file)."""
    root = Path(root)
    if root.is_file():
        return [root]
    return sorted(root.glob("*.npz"))


def _split_prefixes(arrays: dict[str, np.ndarray]) -> dict[str, dict[str, np.ndarray]]:
    """Group ``prefix/key`` arrays by prefix (``parent``, ``ckpt0``, ...)."""
    groups: dict[str, dict[str, np.ndarray]] = {}
    for key, value in arrays.items():
        prefix, _, rest = key.partition("/")
        groups.setdefault(prefix, {})[rest] = value
    return groups


def audit_artifact(path: str | Path, deep: bool = False) -> VerificationReport:
    """Verify one cached artifact; never raises, reports instead."""
    path = Path(path)
    report = VerificationReport(subject=path.name)
    loaded = try_load_state(path)
    report.add(
        "readable",
        loaded is not None,
        detail="" if loaded is not None else "missing, truncated, or corrupt archive",
    )
    if loaded is None:
        return report
    arrays, meta = loaded

    if "checkpoints" in meta:
        _audit_prune_run(arrays, meta, report)
    else:
        _audit_parent(arrays, report)
    if deep:
        oracle_save_load_roundtrip(arrays, meta, report=report)
    return report


def _audit_parent(arrays: dict[str, np.ndarray], report: VerificationReport) -> None:
    check_state_consistency(arrays, report=report)
    # A parent is the dense network Algorithm 1 starts from: nothing pruned.
    pruned = sum(int((mask == 0).sum()) for _, _, mask in mask_pairs(arrays))
    report.add(
        "parent_is_dense",
        pruned == 0,
        detail=f"parent state has {pruned} masked weights" if pruned else "",
        context={"pruned": pruned},
    )


def _audit_prune_run(
    arrays: dict[str, np.ndarray], meta: dict, report: VerificationReport
) -> None:
    groups = _split_prefixes(arrays)
    infos = meta["checkpoints"]
    expected = {"parent", *(f"ckpt{i}" for i in range(len(infos)))}
    report.add(
        "checkpoint_states_complete",
        set(groups) == expected,
        detail=f"state groups {sorted(groups)} != expected {sorted(expected)}"
        if set(groups) != expected
        else "",
    )
    if "parent" in groups:
        _audit_parent(groups["parent"], report)
    for i, info in enumerate(infos):
        state = groups.get(f"ckpt{i}")
        if state is None:
            continue
        ckpt_report = check_state_consistency(
            state, reported_ratio=info.get("achieved_ratio")
        )
        for result in ckpt_report.results:
            result.name = f"ckpt{i}.{result.name}"
        report.results.extend(ckpt_report.results)
    check_curve_sanity(
        [info["achieved_ratio"] for info in infos],
        [info["test_error"] for info in infos],
        meta.get("parent_test_error", 0.0),
        report=report,
    )
    targets = [info["target_ratio"] for info in infos]
    report.add(
        "target_ratios_sorted",
        targets == sorted(targets),
        context={"targets": targets},
    )


def audit_path(path: str | Path, deep: bool = False) -> VerificationReport:
    """Audit one artifact or every artifact in a zoo directory."""
    artifacts = find_artifacts(path)
    if not artifacts:
        report = VerificationReport(subject=str(path))
        report.add("artifacts_found", False, detail=f"no .npz artifacts under {path}")
        return report
    return merge_reports(
        str(path), (audit_artifact(p, deep=deep) for p in artifacts)
    )
