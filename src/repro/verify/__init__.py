"""Invariant checking and differential oracles for the prune–retrain stack.

Both pruning-survey papers (Blalock et al., 2020; Wang et al., 2023) find
that silent setup and accounting bugs — not modeling choices — are the
dominant source of irreproducible pruning results.  This package machine-
checks the bookkeeping instead of trusting it:

- :mod:`repro.verify.invariants` — facts every healthy model/artifact/curve
  obeys (``w == w * mask``, sparsity and FLOP accounting, structured shape
  propagation, curve monotonicity);
- :mod:`repro.verify.oracles` — the same answer computed two ways must
  agree (masked vs baked forward, compiled-plan vs module logits,
  save/load round-trips, fixed-seed determinism, ``jobs=1`` ≡ ``jobs=N``);
- :mod:`repro.verify.artifacts` — architecture-free audits of cached zoo
  artifacts, behind ``python -m repro verify <path>``;
- :mod:`repro.verify.runtime` — opt-in ``REPRO_VERIFY=1`` hooks that fail
  fast inside ``PruneRetrain`` / ``evaluate_curve`` / zoo cache hits.
"""

from repro.verify.artifacts import audit_artifact, audit_path, find_artifacts
from repro.verify.invariants import (
    check_curve_sanity,
    check_flop_accounting,
    check_mask_weight_consistency,
    check_potential_sanity,
    check_prune_accounting,
    check_state_consistency,
    check_structured_masks,
    check_structured_shape_propagation,
    mask_pairs,
)
from repro.verify.oracles import (
    oracle_grad_plan_parity,
    oracle_jobs_equivalence,
    oracle_masked_forward,
    oracle_plan_parity,
    oracle_registry_grad_plan_parity,
    oracle_registry_plan_parity,
    oracle_retrain_determinism,
    oracle_save_load_roundtrip,
    state_mismatches,
)
from repro.verify.report import (
    CheckResult,
    VerificationError,
    VerificationReport,
    merge_reports,
)
from repro.verify.runtime import verify_enabled

__all__ = [
    "CheckResult",
    "VerificationError",
    "VerificationReport",
    "merge_reports",
    "audit_artifact",
    "audit_path",
    "find_artifacts",
    "check_curve_sanity",
    "check_flop_accounting",
    "check_mask_weight_consistency",
    "check_potential_sanity",
    "check_prune_accounting",
    "check_state_consistency",
    "check_structured_masks",
    "check_structured_shape_propagation",
    "mask_pairs",
    "oracle_grad_plan_parity",
    "oracle_jobs_equivalence",
    "oracle_masked_forward",
    "oracle_plan_parity",
    "oracle_registry_grad_plan_parity",
    "oracle_registry_plan_parity",
    "oracle_retrain_determinism",
    "oracle_save_load_roundtrip",
    "state_mismatches",
    "verify_enabled",
]
