"""Differential oracles: two routes to the same answer must agree.

Unlike the invariants (facts about one object), each oracle computes a
quantity twice through independent code paths and compares:

- masked forward ≡ forward of a model with the masks baked into the
  weights (the mask buffer is bookkeeping, not semantics);
- save → load round-trips are bit-exact (the cache returns what was put in);
- a fixed-seed (re)train is deterministic (repetitions differ because of
  seeds, never because of hidden state);
- ``jobs=1`` and ``jobs=N`` zoo builds produce identical artifacts (the
  parallel engine is an execution detail, not part of the experiment).
"""

from __future__ import annotations

import os
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.nn.module import Module
from repro.verify.invariants import mask_pairs
from repro.verify.report import VerificationReport


def state_mismatches(
    a: Mapping[str, np.ndarray], b: Mapping[str, np.ndarray]
) -> list[str]:
    """Keys on which two state dicts differ (missing, shape, or value)."""
    bad = sorted(set(a) ^ set(b))
    for key in sorted(set(a) & set(b)):
        left, right = np.asarray(a[key]), np.asarray(b[key])
        if left.shape != right.shape or not np.array_equal(left, right):
            bad.append(key)
    return bad


def _forward(model: Module, inputs: np.ndarray) -> np.ndarray:
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            return model(Tensor(inputs)).data.copy()
    finally:
        model.train(was_training)


def oracle_masked_forward(
    model: Module,
    inputs: np.ndarray,
    report: VerificationReport | None = None,
) -> VerificationReport:
    """Pruned-model forward ≡ dense forward with masks baked into weights.

    The baked model has every weight pre-multiplied by its mask and the
    mask reset to all-ones, so its forward never touches a mask buffer.
    Both paths multiply by 0.0/1.0 floats, so agreement is exact.
    """
    report = report if report is not None else VerificationReport(subject="model")
    masked_out = _forward(model, inputs)
    state = model.state_dict()
    baked = dict(state)
    for prefix, weight, mask in mask_pairs(state):
        weight_key = f"{prefix}.weight" if prefix != "<root>" else "weight"
        baked[weight_key] = weight * mask
        baked[f"{weight_key}_mask"] = np.ones_like(mask)
    try:
        model.load_state_dict(baked)
        baked_out = _forward(model, inputs)
    finally:
        model.load_state_dict(state)
    equal = np.array_equal(masked_out, baked_out)
    drift = 0.0 if equal else float(np.abs(masked_out - baked_out).max())
    report.add(
        "masked_forward_equivalence",
        equal,
        detail="" if equal else f"masked vs baked forward differ by {drift:.3e}",
        context={"max_abs_diff": drift},
    )
    return report


def oracle_plan_parity(
    model: Module,
    inputs: np.ndarray,
    report: VerificationReport | None = None,
    atol: float = 1e-5,
) -> VerificationReport:
    """Compiled inference-plan logits ≡ eval-mode ``Module`` logits.

    Two differential checks against the module forward:

    - ``plan_parity_unfolded`` — a reference plan (no BatchNorm folding,
      module-exact conv route, no in-place rewrites) must agree within
      ``atol`` max-abs-diff — empirically it is bit-exact;
    - ``plan_parity_folded`` — the production engine (BN folded, masked
      weights densified) must agree within ``atol + 1e-5·max(1, ‖logits‖∞)``:
      folding perturbs weights before the conv reduction, so its rounding
      rides on the largest co-activation.  This check also fails if the
      engine silently fell back to the module path instead of compiling.
    """
    from repro.infer import CompiledPlan, CompileError, InferenceEngine, TraceError, trace

    report = report if report is not None else VerificationReport(subject="model")
    inputs = np.asarray(inputs, dtype=np.float32)
    want = _forward(model, inputs)
    scale = float(np.abs(want).max())
    try:
        graph = trace(model, inputs)
        plan = CompiledPlan(graph, fold_bn=False, exact=True)
        plan.refresh(model)
        diff = float(np.abs(plan.run(inputs) - want).max())
        report.add(
            "plan_parity_unfolded",
            diff <= atol,
            detail="" if diff <= atol else f"unfolded plan differs by {diff:.3e}",
            context={"max_abs_diff": diff, "atol": atol},
        )
    except (TraceError, CompileError) as exc:
        report.add("plan_parity_unfolded", False, detail=f"plan compilation failed: {exc!r}")
        return report
    engine = InferenceEngine(model, batch_size=len(inputs))
    folded = engine.logits(inputs)
    compiled = engine.compiled_for(inputs)
    bound = atol + 1e-5 * max(1.0, scale)
    diff = float(np.abs(folded - want).max())
    ok = compiled and diff <= bound
    report.add(
        "plan_parity_folded",
        ok,
        detail=""
        if ok
        else ("engine fell back to module forward" if not compiled
              else f"folded engine differs by {diff:.3e} (bound {bound:.3e})"),
        context={"max_abs_diff": diff, "bound": bound, "compiled": compiled},
    )
    return report


def oracle_registry_plan_parity(
    batch: int = 4, atol: float = 1e-5
) -> VerificationReport:
    """Plan-vs-module parity for every registry model, pruned and unpruned.

    Each architecture is built at its registry default width, checked
    fresh, then checked again after zeroing the bottom half of every
    prunable layer's weights (median-|w| masks) — the state the study
    loops actually evaluate in.
    """
    from repro.models.registry import available_models, build_model
    from repro.nn.prunable import PrunableWeightMixin

    rng = np.random.default_rng(0)
    reports: list[VerificationReport] = []
    for name in available_models():
        model = build_model(name, rng=np.random.default_rng(3))
        shape = (batch, 3, 4, 4) if name == "mlp" else (batch, 3, 16, 16)
        inputs = rng.standard_normal(shape).astype(np.float32)
        for variant in ("unpruned", "pruned"):
            if variant == "pruned":
                for module in model.modules():
                    if isinstance(module, PrunableWeightMixin):
                        weight = module.weight.data
                        cut = np.median(np.abs(weight))
                        module.set_weight_mask(
                            (np.abs(weight) > cut).astype(np.float32)
                        )
            sub = VerificationReport(subject=f"{name}[{variant}]")
            try:
                oracle_plan_parity(model, inputs, report=sub, atol=atol)
            except Exception as exc:  # noqa: BLE001 — one broken entry
                # (e.g. a leaked custom registration that cannot run the
                # probe shape) must not abort the whole registry audit.
                sub.add("plan_parity", False, detail=f"probe crashed: {exc!r}")
            reports.append(sub)
    from repro.verify.report import merge_reports

    return merge_reports("registry plan parity", reports)


def oracle_grad_plan_parity(
    model: Module,
    inputs: np.ndarray,
    targets: np.ndarray,
    report: VerificationReport | None = None,
) -> VerificationReport:
    """Compiled training-step gradients ≡ tape gradients.

    Two differential checks against one side-effect-free tape step on the
    probe batch:

    - ``grad_plan_parity_exact`` — a plan built with the tape-replicating
      kernel table must agree **bitwise** on loss, logits, and every
      parameter gradient.  This proves the static backward derivation
      (wiring, accumulation, tuple projections) reproduces autograd, not
      merely approximates it.
    - ``grad_plan_parity_fast`` — the production fast plan (fused
      conv→BN→ReLU, shared scratch, reordered conv accumulation) must pass
      the engine's compile-time validation: loss/logits/running-stats
      within the scale-aware tolerance and every gradient within it or the
      relative-ℓ2 budget that absorbs borderline ReLU-gate flips.  This
      also fails if the engine would silently fall back to the tape.
    """
    from repro.infer import CompileError, GradPlan, TraceError, TrainEngine, trace_training
    from repro.nn.losses import CrossEntropyLoss
    from repro.optim import SGD

    report = report if report is not None else VerificationReport(subject="model")
    x = np.asarray(inputs, dtype=np.float32)
    y = np.asarray(targets)
    engine = TrainEngine(model, CrossEntropyLoss(), SGD(model.parameters(), lr=0.1))
    want_loss, want_logits, want_grads, _ = engine._tape_reference(x, y)
    try:
        graph = trace_training(model, engine.loss_fn, x, y)
        plan = GradPlan(graph, model, exact=True)
        loss, logits, grads, _ = plan.run(x, y)
        bad = []
        if float(loss) != want_loss:
            bad.append(f"loss {float(loss)} vs {want_loss}")
        if not np.array_equal(logits, want_logits):
            bad.append("logits")
        for name, want in want_grads.items():
            got = grads.get(name)
            if (got is None) != (want is None) or (
                want is not None and not np.array_equal(got, want)
            ):
                bad.append(name)
        report.add(
            "grad_plan_parity_exact",
            not bad,
            detail=f"exact plan diverges from tape on {bad[:5]}" if bad else "",
            context={"mismatched": bad},
        )
    except (TraceError, CompileError) as exc:
        report.add(
            "grad_plan_parity_exact", False, detail=f"plan compilation failed: {exc!r}"
        )
        return report
    try:
        fast = GradPlan(graph, model, exact=False)
        engine._validate(fast, x, y)
        report.add("grad_plan_parity_fast", True)
    except CompileError as exc:
        report.add(
            "grad_plan_parity_fast", False, detail=f"fast plan out of tolerance: {exc!r}"
        )
    return report


def oracle_registry_grad_plan_parity(batch: int = 4) -> VerificationReport:
    """Gradient-plan-vs-tape parity for every registry model, pruned and unpruned.

    The training-path twin of :func:`oracle_registry_plan_parity`: each
    architecture is probed fresh and again with median-|w| masks — the
    state :class:`~repro.training.Trainer` actually retrains — so the
    compiled default of ``Trainer.train`` is proven against the tape for
    the whole model zoo.
    """
    from repro.models.registry import available_models, build_model
    from repro.nn.prunable import PrunableWeightMixin

    rng = np.random.default_rng(0)
    reports: list[VerificationReport] = []
    for name in available_models():
        model = build_model(name, rng=np.random.default_rng(3))
        shape = (batch, 3, 4, 4) if name == "mlp" else (batch, 3, 16, 16)
        inputs = rng.standard_normal(shape).astype(np.float32)
        if name == "deeplab_small":  # dense labels, 6 classes
            targets = rng.integers(0, 6, (batch, 16, 16))
        else:
            targets = rng.integers(0, 10, batch)
        for variant in ("unpruned", "pruned"):
            if variant == "pruned":
                for module in model.modules():
                    if isinstance(module, PrunableWeightMixin):
                        weight = module.weight.data
                        cut = np.median(np.abs(weight))
                        module.set_weight_mask(
                            (np.abs(weight) > cut).astype(np.float32)
                        )
            sub = VerificationReport(subject=f"{name}[{variant}]")
            try:
                oracle_grad_plan_parity(model, inputs, targets, report=sub)
            except Exception as exc:  # noqa: BLE001 — one broken entry
                # must not abort the whole registry audit.
                sub.add("grad_plan_parity", False, detail=f"probe crashed: {exc!r}")
            reports.append(sub)
    from repro.verify.report import merge_reports

    return merge_reports("registry grad-plan parity", reports)


def oracle_save_load_roundtrip(
    arrays: Mapping[str, np.ndarray],
    meta: Mapping[str, Any] | None = None,
    path: str | Path | None = None,
    report: VerificationReport | None = None,
) -> VerificationReport:
    """``save_state`` → ``load_state`` returns exactly what went in."""
    from repro.utils.serialization import load_state, save_state

    report = report if report is not None else VerificationReport(subject="state")
    with tempfile.TemporaryDirectory() as tmp:
        target = Path(path) if path is not None else Path(tmp) / "roundtrip.npz"
        save_state(target, arrays, meta)
        loaded, loaded_meta = load_state(target)
    bad = state_mismatches(arrays, loaded)
    report.add(
        "save_load_array_roundtrip",
        not bad,
        detail=f"arrays changed across roundtrip: {bad[:5]}" if bad else "",
        context={"mismatched_keys": bad},
    )
    if meta is not None:
        report.add(
            "save_load_meta_roundtrip",
            loaded_meta == dict(meta),
            context={"meta": loaded_meta},
        )
    return report


def oracle_retrain_determinism(
    trainer_factory: Callable[[], Any],
    epochs: int | None = None,
    report: VerificationReport | None = None,
) -> VerificationReport:
    """Two trainings from identical (model, config, seed) end bit-identical.

    ``trainer_factory`` must build a *fresh* trainer each call — same
    initial weights, same ``TrainConfig`` seed.  Divergence means hidden
    state leaks into training (unseeded RNG, accumulation-order change),
    which would silently break repetition error bars and cache reuse.
    """
    report = report if report is not None else VerificationReport(subject="trainer")
    states = []
    for _ in range(2):
        trainer = trainer_factory()
        trainer.train(epochs)
        states.append(trainer.model.state_dict())
    bad = state_mismatches(states[0], states[1])
    report.add(
        "fixed_seed_retrain_determinism",
        not bad,
        detail=f"weights diverged on keys {bad[:5]}" if bad else "",
        context={"mismatched_keys": bad},
    )
    return report


@contextmanager
def _cache_dir_override(path: Path):
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    try:
        yield
    finally:
        if old is None:
            os.environ.pop("REPRO_CACHE_DIR", None)
        else:
            os.environ["REPRO_CACHE_DIR"] = old


def oracle_jobs_equivalence(
    specs: Sequence[Any],
    scale: Any,
    jobs: int = 2,
    report: VerificationReport | None = None,
) -> VerificationReport:
    """``build_zoo(jobs=1)`` and ``build_zoo(jobs=N)`` make identical artifacts.

    Builds the same spec list twice into throwaway cache directories — one
    serial, one through :mod:`repro.parallel` — and compares every artifact
    array-for-array.  This is the worker-count-independence contract of
    PR 1 stated as an executable check.
    """
    from repro.experiments.zoo import artifact_path, build_zoo, parent_specs
    from repro.utils.serialization import load_state

    report = report if report is not None else VerificationReport(subject="zoo")
    with tempfile.TemporaryDirectory() as tmp:
        serial_dir, parallel_dir = Path(tmp) / "serial", Path(tmp) / "parallel"
        with _cache_dir_override(serial_dir):
            build_zoo(specs, scale, jobs=1)
            serial_paths = {
                spec: artifact_path(spec, scale)
                for spec in [*parent_specs(specs), *specs]
            }
            serial = {
                spec: load_state(path) for spec, path in serial_paths.items()
            }
        with _cache_dir_override(parallel_dir):
            build_zoo(specs, scale, jobs=jobs)
            for spec in serial:
                loaded = load_state(artifact_path(spec, scale))
                bad = state_mismatches(serial[spec][0], loaded[0])
                meta_equal = serial[spec][1] == loaded[1]
                report.add(
                    f"jobs_equivalence[{spec.key(scale)}]",
                    not bad and meta_equal,
                    detail=(
                        f"serial vs jobs={jobs} artifacts differ: "
                        f"{bad[:5] or 'metadata'}"
                        if bad or not meta_equal
                        else ""
                    ),
                    context={"mismatched_keys": bad},
                )
    return report
