"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``zoo``        pre-train the cached model zoo used by the benchmarks
``worker``     drain tasks from a durable work-queue directory
``methods``    list the registered pruning methods and their hyperparameters
``curve``      run one prune-retrain pipeline and print its curve
``potential``  prune potential per distribution for one (model, method)
``tables``     print the PR/FR and overparameterization tables

``--method`` accepts any registry spec string — a method name with
optional keyword hyperparameters, e.g. ``wt``, ``lowrank(rank_frac=0.25)``
or ``random(seed=3)``; run ``python -m repro methods`` for the catalog.
``verify``     audit cached artifacts (mask/weight consistency, accounting)
``trace``      render a run ledger (span tree + metric rollups)
``serve-bench``  load-test the serving layer and write ``BENCH_serve.json``
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _method_spec(text: str) -> str:
    """Argparse type: validate + canonicalize a registry spec string."""
    from repro.pruning import available_methods, canonical_spec

    try:
        return canonical_spec(text)
    except (KeyError, ValueError) as exc:
        raise argparse.ArgumentTypeError(
            f"{exc} (registered methods: {', '.join(available_methods())})"
        )


def _method_specs(text: str) -> list[str]:
    """Argparse type: comma-separated list of registry spec strings."""
    return [_method_spec(part) for part in text.split(",") if part.strip()]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--task", default="cifar", choices=["cifar", "imagenet", "voc"])
    parser.add_argument("--model", default="resnet20")
    parser.add_argument(
        "--method",
        default="wt",
        type=_method_spec,
        metavar="SPEC",
        help="registry spec string, e.g. wt, lowrank(rank_frac=0.25); "
        "see `python -m repro methods`",
    )
    parser.add_argument("--repetitions", type=int, default=None)
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (0 = all CPUs; default: REPRO_NUM_WORKERS or 1)",
    )
    parser.add_argument(
        "--on-error",
        choices=["raise", "collect"],
        default="raise",
        help="collect: degrade gracefully on dead cells (NaN holes + "
        "failure manifest) instead of aborting",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="per-cell retry budget for transient failures "
        "(default: REPRO_MAX_RETRIES or 2)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="per-cell deadline in seconds (default: REPRO_CELL_TIMEOUT)",
    )
    _add_executor_flags(parser)


def _add_executor_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--executor",
        choices=["pool", "queue"],
        default=None,
        help="grid execution backend: in-process pool (default) or the "
        "durable work queue, which survives crashes and accepts extra "
        "`python -m repro worker` processes (default: REPRO_EXECUTOR)",
    )
    parser.add_argument(
        "--queue-dir",
        default=None,
        metavar="DIR",
        help="work-queue directory for --executor queue (shared across "
        "hosts for multi-host runs; default: derived per grid under the "
        "cache dir, or REPRO_QUEUE_DIR)",
    )


def _resilience_kwargs(args) -> dict:
    return {
        "jobs": args.jobs,
        "on_error": args.on_error,
        "max_retries": args.max_retries,
        "cell_timeout": args.cell_timeout,
        "executor": args.executor,
        "queue_dir": args.queue_dir,
    }


def _report_degraded(timing) -> None:
    if timing is None or not getattr(timing, "failures", None):
        return
    print()
    for failure in timing.failures:
        print(f"FAILED {failure.describe()}")
    print(f"failure manifest: {timing.manifest_path}")


def _scale(args):
    from repro.experiments import SMOKE

    scale = SMOKE
    if args.repetitions is not None:
        scale = scale.with_(n_repetitions=args.repetitions)
    return scale


def cmd_zoo(args) -> int:
    from benchmarks.build_zoo import main as build_zoo_main  # type: ignore

    from repro import observe

    argv = []
    if getattr(args, "jobs", None) is not None:
        argv += ["--jobs", str(args.jobs)]
    if getattr(args, "on_error", None) is not None:
        argv += ["--on-error", args.on_error]
    if getattr(args, "max_retries", None) is not None:
        argv += ["--max-retries", str(args.max_retries)]
    if getattr(args, "cell_timeout", None) is not None:
        argv += ["--cell-timeout", str(args.cell_timeout)]
    if getattr(args, "executor", None) is not None:
        argv += ["--executor", args.executor]
    if getattr(args, "queue_dir", None) is not None:
        argv += ["--queue-dir", args.queue_dir]
    for manifest in getattr(args, "resume", None) or []:
        argv += ["--resume", manifest]
    rc = build_zoo_main(argv)
    ledger = observe.current_ledger_path()
    if ledger is not None:
        print(f"run ledger: {ledger}")
        print(f"render it with: python -m repro trace {ledger}")
    return rc


def cmd_worker(args) -> int:
    from repro.queue import WorkQueue, run_worker

    queue = WorkQueue(args.queue, lease_seconds=args.lease_seconds)
    report = run_worker(
        queue,
        worker_id=args.worker_id,
        max_tasks=args.max_tasks,
        idle_seconds=args.idle,
    )
    counts = queue.counts()
    print(
        f"worker {report.worker}: {report.completed} completed, "
        f"{report.failed} failed, {report.reclaimed} leases reclaimed, "
        f"{report.duplicate} duplicate completions"
    )
    print(
        f"queue: {counts['done']} done, {counts['pending']} pending, "
        f"{counts['leased']} leased, {counts['quarantined']} quarantined"
    )
    return 0


def cmd_curve(args) -> int:
    from repro.experiments import prune_curve_experiment, prune_summary_row
    from repro.experiments.reporting import curve_line

    scale = _scale(args)
    res = prune_curve_experiment(
        args.task, args.model, args.method, scale, **_resilience_kwargs(args)
    )
    _report_degraded(res.timing)
    print(f"{args.model} / {args.method.upper()} on synth-{args.task}")
    print(f"parent test error: {100 * res.parent_errors.mean():.2f}%")
    print(curve_line("test error vs PR", res.ratios, res.error_mean))
    row = prune_summary_row(res, scale.delta)
    print(
        f"commensurate operating point: PR={100 * row.prune_ratio:.1f}% "
        f"FR={100 * row.flop_reduction:.1f}% (ΔErr {100 * row.error_delta:+.2f}%)"
    )
    return 0


def cmd_potential(args) -> int:
    from repro.experiments import corruption_potential_experiment
    from repro.utils.tables import format_table

    scale = _scale(args)
    res = corruption_potential_experiment(
        args.task, args.model, args.method, scale, **_resilience_kwargs(args)
    )
    _report_degraded(res.timing)
    rows = [
        [d, f"{100 * m:.1f}", f"{100 * s:.1f}"]
        for d, m, s in zip(res.distributions, res.mean, res.std)
    ]
    print(
        format_table(
            ["Distribution", "Potential (%)", "± std"],
            rows,
            title=f"Prune potential — {args.model}/{args.method.upper()} on synth-{args.task}",
        )
    )
    return 0


def cmd_tables(args) -> int:
    from repro.experiments import overparam_table, pr_fr_table

    scale = _scale(args)
    knobs = _resilience_kwargs(args)
    methods = args.methods  # None → every registered method
    _, text = pr_fr_table(args.task, [args.model], methods, scale, **knobs)
    print(text)
    print()
    _, text = overparam_table(args.task, [args.model], methods, scale, **knobs)
    print(text)
    return 0


def cmd_methods(args) -> int:
    from repro.pruning import describe_methods

    print(describe_methods())
    return 0


def cmd_verify(args) -> int:
    from repro.experiments.zoo import cache_dir
    from repro.verify import (
        audit_path,
        merge_reports,
        oracle_registry_grad_plan_parity,
        oracle_registry_plan_parity,
    )

    target = args.path if args.path is not None else str(cache_dir())
    report = audit_path(target, deep=args.deep)
    if args.deep:
        # --deep also proves both compiled engines: inference-plan logits
        # must match module logits, and gradient-plan training steps must
        # match the tape (bitwise in exact mode), for every registry
        # model, pruned and unpruned.
        report = merge_reports(
            report.subject,
            [
                report,
                oracle_registry_plan_parity(),
                oracle_registry_grad_plan_parity(),
            ],
        )
    if args.json is not None:
        from pathlib import Path

        Path(args.json).write_text(report.to_json())
    if args.verbose:
        for result in report.results:
            print(result)
    print(report.summary())
    return 0 if report.passed else 1


def cmd_serve_bench(args) -> int:
    from repro import observe
    from repro.serve import run_serve_bench
    from repro.utils.tables import format_table

    report = run_serve_bench(
        n_requests=args.requests,
        seed=args.seed,
        mean_interarrival=args.mean_interarrival,
        budget_mb=args.budget_mb if args.budget_mb > 0 else None,
        out=args.out,
    )
    load = report["load"]
    rows = [
        ["requests", str(load["n_requests"])],
        ["served ok", str(load["ok"])],
        ["shed", f"{load['shed']} ({100 * load['shed_rate']:.1f}%)"],
        [
            "deadline missed",
            f"{load['deadline_miss']} ({100 * load['deadline_miss_rate']:.1f}%)",
        ],
        ["errors", str(load["errors"])],
        ["lost", str(load["lost"])],
        ["latency p50", f"{load['latency_p50_ms']:.2f} ms"],
        ["latency p99", f"{load['latency_p99_ms']:.2f} ms"],
        ["throughput", f"{load['throughput_rps']:.0f} req/s"],
        ["batches", str(load["batches"])],
        ["batch occupancy", f"mean {load['batch_occupancy']['mean']:.1f} "
         f"max {load['batch_occupancy']['max']}"],
        ["plan memory", f"{report['registry']['plan_memory_bytes'] / 2**20:.1f} MiB "
         f"({report['registry']['evictions']} evictions)"],
        ["bitwise parity", "ok" if report["parity"]["bitwise_equal"] else "FAILED"],
    ]
    print(
        format_table(
            ["Metric", "Value"],
            rows,
            title=f"serve-bench — {len(report['models'])} models, "
            f"{len(report['shapes'])} shapes, lognormal arrivals",
        )
    )
    if args.out:
        print(f"\nreport: {args.out}")
    ledger = observe.current_ledger_path()
    if ledger is not None:
        print(f"run ledger: {ledger}")
    return 0 if report["parity"]["bitwise_equal"] and load["lost"] == 0 else 1


def cmd_trace(args) -> int:
    from repro.observe import load_report

    try:
        report = load_report(args.path)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(report.to_json())
    else:
        print(report.render())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    zoo_parser = sub.add_parser("zoo", help="pre-train the cached model zoo")
    zoo_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (0 = all CPUs; default: REPRO_NUM_WORKERS or 1)",
    )
    zoo_parser.add_argument(
        "--on-error",
        choices=["raise", "collect"],
        default=None,
        help="collect: finish surviving cells, persist a failure manifest",
    )
    zoo_parser.add_argument(
        "--max-retries", type=int, default=None, help="per-cell retry budget"
    )
    zoo_parser.add_argument(
        "--cell-timeout", type=float, default=None, help="per-cell deadline (s)"
    )
    zoo_parser.add_argument(
        "--resume",
        action="append",
        default=None,
        metavar="MANIFEST",
        help="recompute only the failed cells of a previous degraded run; "
        "repeatable — several manifests are merged and deduplicated",
    )
    _add_executor_flags(zoo_parser)

    worker_parser = sub.add_parser(
        "worker",
        help="drain tasks from a durable work-queue directory "
        "(see --executor queue)",
    )
    worker_parser.add_argument(
        "--queue",
        required=True,
        metavar="DIR",
        help="queue directory (the driver's --queue-dir)",
    )
    worker_parser.add_argument(
        "--worker-id", default=None, help="stable worker name for the journal"
    )
    worker_parser.add_argument(
        "--max-tasks", type=int, default=None, help="stop after N tasks"
    )
    worker_parser.add_argument(
        "--idle",
        type=float,
        default=0.0,
        help="keep serving new work for this many seconds after a drain",
    )
    worker_parser.add_argument(
        "--lease-seconds",
        type=float,
        default=None,
        help="lease duration (default: REPRO_LEASE_SECONDS or 60)",
    )
    worker_parser.set_defaults(fn=cmd_worker)
    for name, fn in [("curve", cmd_curve), ("potential", cmd_potential), ("tables", cmd_tables)]:
        p = sub.add_parser(name)
        _add_common(p)
        if name == "tables":
            p.add_argument(
                "--methods",
                default=None,
                type=_method_specs,
                metavar="SPEC[,SPEC...]",
                help="comma-separated registry spec strings "
                "(default: every registered method)",
            )
        p.set_defaults(fn=fn)

    methods_parser = sub.add_parser(
        "methods", help="list registered pruning methods and hyperparameters"
    )
    methods_parser.set_defaults(fn=cmd_methods)

    verify_parser = sub.add_parser(
        "verify", help="audit cached artifacts or a zoo directory"
    )
    verify_parser.add_argument(
        "path",
        nargs="?",
        default=None,
        help="artifact (.npz) or zoo directory (default: the cache dir)",
    )
    verify_parser.add_argument(
        "--deep",
        action="store_true",
        help="also run save/load round-trip oracles per artifact and the "
        "registry plan-parity oracles (compiled inference plans vs modules, "
        "compiled gradient plans vs the autograd tape)",
    )
    verify_parser.add_argument(
        "--json", default=None, help="write the full report to this JSON file"
    )
    verify_parser.add_argument(
        "--verbose", action="store_true", help="print every check, not just failures"
    )
    verify_parser.set_defaults(fn=cmd_verify)

    serve_parser = sub.add_parser(
        "serve-bench",
        help="seeded mixed-traffic load run against the serving layer",
    )
    serve_parser.add_argument(
        "--requests", type=int, default=400, help="arrivals to simulate"
    )
    serve_parser.add_argument("--seed", type=int, default=0)
    serve_parser.add_argument(
        "--mean-interarrival",
        type=float,
        default=0.002,
        help="mean lognormal inter-arrival gap in seconds",
    )
    serve_parser.add_argument(
        "--budget-mb",
        type=float,
        default=48.0,
        help="compiled-plan memory budget in MiB (<=0: unbounded)",
    )
    serve_parser.add_argument(
        "--out",
        default="BENCH_serve.json",
        help="write the JSON report here (default: BENCH_serve.json)",
    )
    serve_parser.set_defaults(fn=cmd_serve_bench)

    trace_parser = sub.add_parser(
        "trace", help="render a run ledger written under REPRO_OBSERVE=1"
    )
    trace_parser.add_argument(
        "path",
        help="ledger file (run-*.jsonl) or a directory of ledgers (newest wins)",
    )
    trace_parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    trace_parser.set_defaults(fn=cmd_trace)
    parser.set_defaults(fn=cmd_zoo)

    args = parser.parse_args(argv)
    np.set_printoptions(precision=3, suppress=True)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
