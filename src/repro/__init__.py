"""repro — reproduction of *Lost in Pruning: The Effects of Pruning Neural
Networks beyond Test Accuracy* (Liebenwein et al., MLSys 2021).

The library is a pure-NumPy stack:

- :mod:`repro.autograd` / :mod:`repro.nn` / :mod:`repro.optim` — the deep
  learning substrate (reverse-mode autodiff, conv nets, SGD recipes);
- :mod:`repro.models` — scaled members of the paper's architecture families;
- :mod:`repro.data` — synthetic CIFAR/ImageNet/VOC stand-ins, the
  corruption suite, ℓ∞ noise, and the shifted test set;
- :mod:`repro.pruning` — WT / SiPP / FT / PFP and PRUNERETRAIN (Alg. 1);
- :mod:`repro.analysis` — functional distance, BackSelect, prune potential
  (Def. 1), excess error (Def. 2), overparameterization summaries;
- :mod:`repro.infer` — the eval-mode inference engine: traced forward
  plans (no autograd tape), BatchNorm folding, densified masked weights,
  and the ``engine_for`` seam every study loop evaluates through;
- :mod:`repro.experiments` — one harness entry per paper table/figure;
- :mod:`repro.verify` — invariant checkers, differential oracles, and the
  ``REPRO_VERIFY=1`` runtime hooks guarding all of the above;
- :mod:`repro.observe` — spans, counters/gauges/histograms, and the
  ``REPRO_OBSERVE=1`` crash-safe JSONL run ledger rendered by
  ``python -m repro trace``.

Quickstart::

    import numpy as np
    from repro import data, models, pruning
    from repro.training import Trainer, TrainConfig

    suite = data.cifar_like()
    model = models.resnet20(rng=np.random.default_rng(0))
    trainer = Trainer(model, suite, TrainConfig(epochs=10))
    trainer.train()
    pipeline = pruning.PruneRetrain(trainer, pruning.build_method("wt"))
    run = pipeline.run(target_ratios=[0.5, 0.85, 0.95])
"""

__version__ = "1.0.0"

from repro import (
    analysis,
    autograd,
    data,
    infer,
    models,
    nn,
    observe,
    optim,
    pruning,
    training,
    utils,
    verify,
)

__all__ = [
    "analysis",
    "autograd",
    "data",
    "infer",
    "models",
    "nn",
    "observe",
    "optim",
    "pruning",
    "training",
    "utils",
    "verify",
    "__version__",
]
