"""Pruning a dense-prediction model (the Pascal-VOC role, Table 8).

Segmentation is the paper's hardest pruning target: DeeplabV3's filter
prune potential is 0% even on nominal data.  This example runs the
pipeline on the synthetic VOC task and reports pixel accuracy, mean IoU,
and the prune potential per method.

    python examples/segmentation_pruning.py
"""

import numpy as np

from repro.analysis import evaluate_curve
from repro.experiments import SMOKE, ZooSpec, get_prune_run, make_model, make_suite
from repro.training import evaluate_model
from repro.utils.tables import format_table

DELTA = 0.005


def main() -> None:
    scale = SMOKE.with_(n_repetitions=1)
    suite = make_suite("voc", scale)
    normalizer = suite.normalizer()
    test = suite.test_set()
    print(
        f"synthetic VOC task: {len(suite.train_set())} train / {len(test)} test "
        f"images at {suite.input_shape[1]}x{suite.input_shape[2]}, "
        f"{suite.num_classes} classes (incl. background)"
    )

    rows = []
    for method in ("wt", "ft", "pfp"):
        spec = ZooSpec("voc", "deeplab_small", method, repetition=0)
        run = get_prune_run(spec, scale)
        model = make_model(spec, suite, scale)

        # Parent metrics (pixel accuracy + IoU, as Table 8 reports both).
        run.restore_parent(model)
        parent = evaluate_model(model, test.images, test.labels, normalizer)

        curve = evaluate_curve(run, model, test, normalizer)
        potential = curve.potential(DELTA)

        # Metrics at the largest commensurate checkpoint (or the first).
        qualifying = [
            i for i, e in enumerate(curve.errors) if e <= curve.parent_error + DELTA
        ]
        idx = max(qualifying) if qualifying else 0
        run.restore(model, idx)
        pruned = evaluate_model(model, test.images, test.labels, normalizer)

        rows.append(
            [
                method.upper(),
                f"{100 * parent['accuracy']:.1f}",
                f"{100 * parent['iou']:.1f}",
                f"{100 * potential:.0f}",
                f"{run.checkpoints[idx].achieved_ratio:.2f}",
                f"{100 * pruned['accuracy']:.1f}",
                f"{100 * pruned['iou']:.1f}",
            ]
        )

    print()
    print(
        format_table(
            [
                "Method",
                "Parent acc (%)",
                "Parent IoU (%)",
                "Potential (%)",
                "PR shown",
                "Pruned acc (%)",
                "Pruned IoU (%)",
            ],
            rows,
            title="Table 8 in miniature — pruning the segmentation model",
        )
    )
    print(
        "\nthe paper's Table 8: on real VOC, WT keeps ~59% of weights "
        "prunable at commensurate IoU while FT keeps 0% — dense prediction "
        "tolerates unstructured sparsity far better than filter removal."
    )


if __name__ == "__main__":
    main()
