"""Functional distance: is a pruned network the same *function*?

Reproduces Section 4 in miniature: compares a pruned network against its
parent and against a separately trained network of the same architecture

- under ℓ∞-bounded input noise (matching predictions, softmax distance),
- via BackSelect informative-pixel transfer (the Fig. 3 heatmap).

    python examples/functional_similarity.py
"""

import numpy as np

from repro.analysis import cross_model_confidence_matrix, noise_similarity
from repro.experiments import SMOKE, ZooSpec, get_parent_state, get_prune_run, make_model, make_suite
from repro.utils.tables import format_table


def main() -> None:
    scale = SMOKE
    suite = make_suite("cifar", scale)
    normalizer = suite.normalizer()
    test = suite.test_set()
    images = normalizer(test.images[:128])

    print("loading (or training) networks ...")
    spec = ZooSpec("cifar", "resnet20", "wt", repetition=0)
    run = get_prune_run(spec, scale)

    parent = make_model(spec, suite, scale)
    parent.load_state_dict(run.parent_state)

    mid = len(run.checkpoints) // 2
    pruned = make_model(spec, suite, scale)
    pruned.load_state_dict(run.checkpoints[mid].state)
    pr = run.checkpoints[mid].achieved_ratio

    sep_spec = ZooSpec("cifar", "resnet20", None, repetition=1)
    separate = make_model(sep_spec, suite, scale)
    separate.load_state_dict(get_parent_state(sep_spec, scale))

    # --- noise similarity -------------------------------------------------
    rows = []
    for eps in (0.0, 0.1, 0.3):
        sim_p = noise_similarity(parent, pruned, images, eps, n_trials=5, rng=0)
        sim_s = noise_similarity(parent, separate, images, eps, n_trials=5, rng=0)
        rows.append(
            [
                f"{eps:.1f}",
                f"{sim_p.match_rate:.2f}",
                f"{sim_s.match_rate:.2f}",
                f"{sim_p.l2_distance:.3f}",
                f"{sim_s.l2_distance:.3f}",
            ]
        )
    print()
    print(
        format_table(
            ["eps", f"match vs pruned (PR={pr:.2f})", "match vs separate",
             "L2 vs pruned", "L2 vs separate"],
            rows,
            title="Fig. 4 in miniature — noise similarity to the parent",
        )
    )

    # --- informative-feature transfer ------------------------------------
    print("\nrunning BackSelect on a few test images (this is the slow part) ...")
    labels = ["parent", f"pruned PR={pr:.2f}", "separate"]
    heat = cross_model_confidence_matrix(
        [parent, pruned, separate],
        images[:4],
        test.labels[:4],
        keep_fraction=0.1,
        pixels_per_step=16,
    )
    rows = [[labels[i]] + [f"{v:.2f}" for v in heat[i]] for i in range(3)]
    print()
    print(
        format_table(
            ["pixels from \\ eval on", *labels],
            rows,
            title="Fig. 3 in miniature — confidence on informative pixels",
        )
    )
    print(
        "\nreading: the pruned network stays functionally close to its "
        "parent (high match rate, transferable informative pixels); an "
        "independently trained network of identical architecture does not."
    )


if __name__ == "__main__":
    main()
