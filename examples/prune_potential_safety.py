"""Safety-critical deployment check: is the nominal prune ratio safe?

The paper's central warning (Section 5): a prune ratio that preserves
*test accuracy* can destroy accuracy under distribution shift.  This
example plays out the workflow its Section 7 guidelines prescribe for a
practitioner about to deploy a pruned perception model:

1. prune to the nominal potential,
2. re-evaluate the potential on a *hold-out distribution* (corruptions),
3. apply the paper's guidelines to pick a deployment prune ratio.

    python examples/prune_potential_safety.py
"""

import numpy as np

from repro.analysis import evaluate_curve
from repro.experiments import SMOKE, ZooSpec, get_prune_run, make_model, make_suite
from repro.utils.tables import format_table

# Corruptions standing in for "conditions we might see on the road".
DEPLOYMENT_SHIFTS = ["gaussian_noise", "fog", "brightness", "motion_blur", "jpeg"]
DELTA = 0.005


def main() -> None:
    scale = SMOKE
    suite = make_suite("cifar", scale)
    spec = ZooSpec("cifar", "resnet20", "wt", repetition=0)
    print("training (or loading) the WT prune-retrain pipeline ...")
    run = get_prune_run(spec, scale)
    model = make_model(spec, suite, scale)
    normalizer = suite.normalizer()

    # Potential per distribution.
    rows = []
    potentials = {}
    datasets = {"nominal": suite.test_set(), "shifted (CIFAR10.1 role)": suite.shifted_test_set()}
    datasets.update(
        {c: suite.corrupted_test_set(c, scale.severity) for c in DEPLOYMENT_SHIFTS}
    )
    for name, dataset in datasets.items():
        curve = evaluate_curve(run, model, dataset, normalizer)
        potentials[name] = curve.potential(DELTA)
        rows.append(
            [
                name,
                f"{100 * curve.parent_error:.1f}",
                f"{100 * potentials[name]:.0f}",
            ]
        )
    print()
    print(
        format_table(
            ["Distribution", "Parent err (%)", "Prune potential (%)"],
            rows,
            title="Prune potential per deployment condition",
        )
    )

    nominal = potentials["nominal"]
    worst = min(potentials.values())
    worst_name = min(potentials, key=potentials.get)

    print(f"\nnominal potential: {100 * nominal:.0f}%")
    print(f"worst-case potential: {100 * worst:.0f}% (under {worst_name})")

    # The paper's guidelines (Section 1):
    print("\nrecommendation per the paper's guidelines:")
    if worst >= 0.9 * nominal:
        print(
            "  (3) All anticipated shifts retain the nominal potential — "
            f"prune to the full extent ({100 * nominal:.0f}%)."
        )
    elif worst > 0:
        print(
            "  (2) Partial knowledge of shifts: prune moderately — deploy at "
            f"the worst-case potential ({100 * worst:.0f}%), not the nominal "
            f"({100 * nominal:.0f}%)."
        )
    else:
        print(
            "  (1) Some anticipated condition tolerates no pruning at all "
            f"({worst_name}): don't prune, or add that condition to "
            "(re-)training first (guideline 4, see robust_pruning.py)."
        )


if __name__ == "__main__":
    main()
