"""Robust pruning: trade explicit regularization for lost implicit
regularization (Section 6 of the paper).

Compares two WT prune-retrain pipelines on the same architecture:

- *nominal*: standard training and retraining;
- *robust*: every (re-)training batch is corrupted with a random
  train-distribution corruption (Table 11 protocol).

and reports the prune potential of each on corruptions from the train
distribution and from the held-out test distribution.

    python examples/robust_pruning.py
"""

import numpy as np

from repro.analysis import evaluate_curve
from repro.experiments import SMOKE, ZooSpec, get_prune_run, make_model, make_suite
from repro.training import default_robust_protocol
from repro.utils.tables import format_table

DELTA = 0.005


def potentials_for(run, model, suite, corruptions, severity):
    normalizer = suite.normalizer()
    out = {}
    for name in corruptions:
        curve = evaluate_curve(
            run, model, suite.corrupted_test_set(name, severity), normalizer
        )
        out[name] = curve.potential(DELTA)
    return out


def main() -> None:
    scale = SMOKE
    suite = make_suite("cifar", scale)
    protocol = default_robust_protocol(scale.severity)

    print("building (or loading) nominal and robust WT pipelines ...")
    runs = {}
    for robust in (False, True):
        spec = ZooSpec("cifar", "resnet20", "wt", repetition=0, robust=robust)
        runs[robust] = (get_prune_run(spec, scale), make_model(spec, suite, scale))

    # Evaluate on two train-dist and two test-dist corruptions.
    probe_train = list(protocol.train_corruptions[:2])
    probe_test = list(protocol.test_corruptions[:2])

    rows = []
    summary = {}
    for robust, (run, model) in runs.items():
        label = "robust" if robust else "nominal"
        pot = potentials_for(
            run, model, suite, probe_train + probe_test, scale.severity
        )
        summary[label] = pot
        for name, p in pot.items():
            side = "train-dist" if name in probe_train else "test-dist (held out)"
            rows.append([label, name, side, f"{100 * p:.0f}"])

    print()
    print(
        format_table(
            ["Training", "Corruption", "Corruption side", "Prune potential (%)"],
            rows,
            title="Fig. 8 in miniature — potential with and without robust training",
        )
    )

    gain_train = np.mean(
        [summary["robust"][c] - summary["nominal"][c] for c in probe_train]
    )
    gain_test = np.mean(
        [summary["robust"][c] - summary["nominal"][c] for c in probe_test]
    )
    print(f"\naverage potential gained by robust training:")
    print(f"  on corruptions included in training:  {100 * gain_train:+.0f} points")
    print(f"  on held-out corruptions:              {100 * gain_test:+.0f} points")
    print(
        "\nthe paper's reading: data augmentation supplies *explicit* "
        "regularization that substitutes for the implicit regularization "
        "pruning removes — but only for shifts you can model at training time."
    )


if __name__ == "__main__":
    main()
