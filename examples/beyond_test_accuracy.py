"""Beyond test accuracy: what else did pruning change?

The paper's title question applied to one pruned checkpoint with
commensurate test accuracy.  Three views the aggregate metric hides:

1. per-class error deltas (selective brain damage; Hooker et al. 2019),
2. white-box FGSM robustness (the Section 2 adversarial debate),
3. accuracy under corruption shifts (Section 5).

    python examples/beyond_test_accuracy.py
"""

import numpy as np

from repro.analysis import adversarial_error, class_impact, layerwise_sparsity
from repro.experiments import SMOKE, ZooSpec, get_prune_run, make_model, make_suite
from repro.training import evaluate_model
from repro.utils.tables import format_table


def main() -> None:
    scale = SMOKE
    suite = make_suite("cifar", scale)
    normalizer = suite.normalizer()
    test = suite.test_set()

    spec = ZooSpec("cifar", "resnet20", "wt", repetition=0)
    run = get_prune_run(spec, scale)
    parent = make_model(spec, suite, scale)
    parent.load_state_dict(run.parent_state)

    # Pick the largest commensurate checkpoint: "same test accuracy".
    commensurate = [
        i
        for i, c in enumerate(run.checkpoints)
        if c.test_error <= run.parent_test_error + scale.delta
    ]
    idx = max(commensurate) if commensurate else 0
    pruned = make_model(spec, suite, scale)
    pruned.load_state_dict(run.checkpoints[idx].state)
    pr = run.checkpoints[idx].achieved_ratio

    parent_err = evaluate_model(parent, test.images, test.labels, normalizer)["error"]
    pruned_err = evaluate_model(pruned, test.images, test.labels, normalizer)["error"]
    print(
        f"WT checkpoint at PR={pr:.2f}: test error {100 * pruned_err:.1f}% vs "
        f"parent {100 * parent_err:.1f}% — 'commensurate'. But:"
    )

    # 1. per-class damage
    impact = class_impact(parent, pruned, test, suite.num_classes, normalizer)
    rows = [
        [k, f"{100 * pe:.1f}", f"{100 * qe:.1f}", f"{100 * d:+.1f}"]
        for k, (pe, qe, d) in enumerate(
            zip(impact.parent_errors, impact.pruned_errors, impact.deltas)
        )
    ]
    print()
    print(
        format_table(
            ["Class", "Parent err (%)", "Pruned err (%)", "Δ (%)"],
            rows,
            title="1. Per-class damage",
        )
    )
    print(
        f"worst class: {impact.worst_class} "
        f"(+{100 * impact.deltas[impact.worst_class]:.1f} points; disparity over "
        f"aggregate {100 * impact.disparity:+.1f})"
    )

    # 2. adversarial robustness
    images_norm = normalizer(test.images[:200])
    labels = test.labels[:200]
    rows = []
    for eps in (0.05, 0.1):
        rows.append(
            [
                f"{eps:.2f}",
                f"{100 * adversarial_error(parent, images_norm, labels, eps):.1f}",
                f"{100 * adversarial_error(pruned, images_norm, labels, eps):.1f}",
            ]
        )
    print()
    print(
        format_table(
            ["FGSM eps", "Parent err (%)", "Pruned err (%)"],
            rows,
            title="2. White-box FGSM error",
        )
    )

    # 3. corruption shift
    rows = []
    for corruption in ("brightness", "fog", "jpeg"):
        ds = suite.corrupted_test_set(corruption, scale.severity)
        pe = evaluate_model(parent, ds.images, ds.labels, normalizer)["error"]
        qe = evaluate_model(pruned, ds.images, ds.labels, normalizer)["error"]
        rows.append([corruption, f"{100 * pe:.1f}", f"{100 * qe:.1f}", f"{100 * (qe - pe):+.1f}"])
    print()
    print(
        format_table(
            ["Corruption", "Parent err (%)", "Pruned err (%)", "Δ (%)"],
            rows,
            title="3. Corruption-shift error",
        )
    )
    # 4. where the pruning happened
    per_layer = layerwise_sparsity(pruned)
    most = max(per_layer, key=per_layer.get)
    least = min(per_layer, key=per_layer.get)
    print(
        f"\n4. Sparsity allocation: global WT pruned {100 * per_layer[most]:.0f}% "
        f"of '{most}' but only {100 * per_layer[least]:.0f}% of '{least}' — "
        "the surviving capacity is concentrated in a few sensitive layers."
    )

    print(
        "\nequal test accuracy is not functional equivalence — evaluate "
        "pruned networks on the conditions you will deploy them under."
    )


if __name__ == "__main__":
    main()
