"""Quickstart: train a network, prune it iteratively, read the curve.

Trains a scaled-down ResNet20 on the synthetic CIFAR-like task, runs the
paper's PRUNERETRAIN pipeline (Algorithm 1) with global weight
thresholding, and prints the prune-accuracy curve plus the prune potential
(Definition 1) at the paper's δ = 0.5%.

Runs in a couple of minutes on one CPU core:

    python examples/quickstart.py
"""

import numpy as np

from repro import data, models, pruning
from repro.analysis import prune_potential_from_curve
from repro.optim import MultiStepLR
from repro.training import TrainConfig, Trainer

EPOCHS = 12


def main() -> None:
    # 1. Task + model. Every split/prototype is deterministic from the seed.
    suite = data.cifar_like(seed=0, n_train=1000, n_test=400)
    model = models.resnet20(
        num_classes=suite.num_classes, base_width=4, rng=np.random.default_rng(0)
    )
    print(f"ResNet20 family member with {model.num_parameters():,} parameters")

    # 2. Train the parent to completion (Algorithm 1, line 2).
    config = TrainConfig(
        epochs=EPOCHS,
        batch_size=64,
        lr=0.05,
        warmup_epochs=1.0,
        schedule=MultiStepLR([0.5 * EPOCHS, 0.8 * EPOCHS], 0.1),
        retrain_schedule=MultiStepLR([1.5, 2.4], 0.1),
        seed=0,
    )
    trainer = Trainer(model, suite, config)
    trainer.train()
    parent = trainer.evaluate()
    print(f"parent test error: {100 * parent['error']:.2f}%")

    # 3. Iteratively prune and retrain (Algorithm 1, lines 4-7).
    pipeline = pruning.PruneRetrain(trainer, pruning.build_method("wt"), retrain_epochs=3)
    run = pipeline.run(target_ratios=[0.2, 0.4, 0.6, 0.8, 0.9, 0.96])

    print("\nprune-accuracy curve (nominal test data):")
    for ckpt in run.checkpoints:
        marker = "ok " if ckpt.test_error <= run.parent_test_error + 0.005 else "drop"
        print(
            f"  PR={ckpt.achieved_ratio:.2f}  test error {100 * ckpt.test_error:5.2f}%  [{marker}]"
        )

    potential = prune_potential_from_curve(
        run.ratios, run.test_errors, run.parent_test_error, delta=0.005
    )
    print(f"\nprune potential (delta=0.5%): {100 * potential:.0f}%")
    print(
        "i.e. this network can lose that share of its weights with no "
        "meaningful nominal test-accuracy cost — but see "
        "prune_potential_safety.py before deploying it."
    )


if __name__ == "__main__":
    main()
