"""Pre-build the cached model zoo used by the benchmark suite.

Running the benchmarks cold trains every (model, method, repetition)
triple, which takes roughly an hour on one CPU core.  This script performs
that training up front (idempotently — cached artifacts are skipped) so
``pytest benchmarks/ --benchmark-only`` spends its time on the paper's
analyses rather than on SGD.

Usage::

    python benchmarks/build_zoo.py
"""

from __future__ import annotations

import sys
import time

from repro.experiments import SMOKE, ZooSpec, get_prune_run

# Every zoo artifact any benchmark touches, cheapest first.
BENCH_ZOO: list[tuple[str, str, str, int, bool]] = [
    # (task, model, method, repetitions, robust)
    ("cifar", "resnet20", "wt", 2, False),
    ("cifar", "resnet20", "sipp", 2, False),
    ("cifar", "resnet20", "ft", 2, False),
    ("cifar", "resnet20", "pfp", 2, False),
    ("cifar", "resnet20", "wt", 2, True),
    ("cifar", "resnet20", "ft", 2, True),
    ("cifar", "vgg16", "wt", 2, False),
    ("cifar", "vgg16", "ft", 2, False),
    ("cifar", "wrn16_8", "wt", 2, False),
    ("cifar", "wrn16_8", "ft", 2, False),
    ("imagenet", "resnet18", "wt", 1, False),
    ("imagenet", "resnet18", "ft", 1, False),
    ("voc", "deeplab_small", "wt", 1, False),
    ("voc", "deeplab_small", "ft", 1, False),
    ("voc", "deeplab_small", "pfp", 1, False),
]


def main() -> int:
    start = time.time()
    for task, model, method, reps, robust in BENCH_ZOO:
        for rep in range(reps):
            spec = ZooSpec(task, model, method, rep, robust)
            t0 = time.time()
            run = get_prune_run(spec, SMOKE)
            print(
                f"{spec.key(SMOKE)}: parent_err={run.parent_test_error:.3f} "
                f"max_ratio={run.ratios.max():.2f} [{time.time() - t0:.0f}s, "
                f"total {time.time() - start:.0f}s]",
                flush=True,
            )
    print(f"zoo complete in {time.time() - start:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
