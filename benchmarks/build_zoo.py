"""Pre-build the cached model zoo used by the benchmark suite.

Running the benchmarks cold trains every (model, method, repetition)
triple, which takes roughly an hour on one CPU core.  This script performs
that training up front (idempotently — cached artifacts are skipped) so
``pytest benchmarks/ --benchmark-only`` spends its time on the paper's
analyses rather than on SGD.

The build fans out across worker processes: parents first, then prune
runs, with per-artifact file locks so concurrent invocations are safe.

Usage::

    python benchmarks/build_zoo.py [--jobs N] [--on-error collect]
    python benchmarks/build_zoo.py --resume <failure-manifest.json>
    python benchmarks/build_zoo.py --executor queue --queue-dir /shared/q

``--jobs 0`` means "all CPUs"; the default honours ``REPRO_NUM_WORKERS``
and falls back to serial execution.  With ``--on-error collect`` a dead
cell (after its retries) no longer aborts the build: surviving cells
complete, the failures are persisted as a manifest in the cache dir, and
``--resume`` re-dispatches exactly those cells against the warm cache.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import SMOKE, ZooSpec, build_zoo

# Every zoo artifact any benchmark touches, cheapest first.
BENCH_ZOO: list[tuple[str, str, str, int, bool]] = [
    # (task, model, method, repetitions, robust)
    ("cifar", "resnet20", "wt", 2, False),
    ("cifar", "resnet20", "sipp", 2, False),
    ("cifar", "resnet20", "ft", 2, False),
    ("cifar", "resnet20", "pfp", 2, False),
    ("cifar", "resnet20", "lowrank", 2, False),
    ("cifar", "resnet20", "uniform", 2, False),
    ("cifar", "resnet20", "random", 2, False),
    ("cifar", "resnet20", "wt", 2, True),
    ("cifar", "resnet20", "ft", 2, True),
    ("cifar", "vgg16", "wt", 2, False),
    ("cifar", "vgg16", "ft", 2, False),
    ("cifar", "wrn16_8", "wt", 2, False),
    ("cifar", "wrn16_8", "ft", 2, False),
    ("imagenet", "resnet18", "wt", 1, False),
    ("imagenet", "resnet18", "ft", 1, False),
    ("voc", "deeplab_small", "wt", 1, False),
    ("voc", "deeplab_small", "ft", 1, False),
    ("voc", "deeplab_small", "pfp", 1, False),
]


def bench_zoo_specs() -> list[ZooSpec]:
    """The flat spec list behind ``BENCH_ZOO``."""
    return [
        ZooSpec(task, model, method, rep, robust)
        for task, model, method, reps, robust in BENCH_ZOO
        for rep in range(reps)
    ]


def add_resilience_flags(parser: argparse.ArgumentParser) -> None:
    """The fault-tolerance knobs shared by the zoo CLI surfaces."""
    parser.add_argument(
        "--on-error",
        choices=["raise", "collect"],
        default=None,
        help="collect: finish surviving cells and persist a failure manifest "
        "instead of aborting on the first dead cell (default: raise)",
    )
    parser.add_argument(
        "--max-retries",
        type=int,
        default=None,
        help="retry budget per cell for transient failures "
        "(default: REPRO_MAX_RETRIES or 2)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        help="per-cell deadline in seconds; a hung worker is replaced "
        "(default: REPRO_CELL_TIMEOUT or no deadline)",
    )
    parser.add_argument(
        "--resume",
        action="append",
        default=None,
        metavar="MANIFEST",
        help="re-dispatch only the failed cells recorded in this failure "
        "manifest (from a previous --on-error collect run); repeatable — "
        "several manifests are merged and deduplicated",
    )
    parser.add_argument(
        "--executor",
        choices=["pool", "queue"],
        default=None,
        help="grid backend: in-process pool (default) or the durable work "
        "queue, which survives crashes and accepts extra "
        "`python -m repro worker` processes (default: REPRO_EXECUTOR)",
    )
    parser.add_argument(
        "--queue-dir",
        default=None,
        metavar="DIR",
        help="work-queue directory for --executor queue "
        "(default: derived per grid, or REPRO_QUEUE_DIR)",
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="pre-train the cached model zoo")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (0 = all CPUs; default: REPRO_NUM_WORKERS or 1)",
    )
    add_resilience_flags(parser)
    args = parser.parse_args(argv)

    if args.resume:
        from repro.resilience import resume_zoo

        try:
            timing = resume_zoo(
                args.resume,
                SMOKE,
                jobs=args.jobs,
                on_error=args.on_error or "collect",
                max_retries=args.max_retries,
                cell_timeout=args.cell_timeout,
                executor=args.executor,
                queue_dir=args.queue_dir,
            )
        except FileNotFoundError:
            missing = ", ".join(args.resume)
            print(f"error: no failure manifest at {missing}", file=sys.stderr)
            return 2
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        timing = build_zoo(
            bench_zoo_specs(),
            SMOKE,
            jobs=args.jobs,
            on_error=args.on_error or "raise",
            max_retries=args.max_retries,
            cell_timeout=args.cell_timeout,
            executor=args.executor,
            queue_dir=args.queue_dir,
        )
    for cell in timing.cells:
        status = "cached" if cell.cached else "built"
        print(f"{cell.key}: {status} in {cell.seconds:.1f}s", flush=True)
    print(timing.summary())
    if timing.failures:
        for failure in timing.failures:
            print(f"FAILED {failure.describe()}", flush=True)
        print(f"failure manifest: {timing.manifest_path}")
        print(f"resume with: python -m repro zoo --resume {timing.manifest_path}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
