"""Pre-build the cached model zoo used by the benchmark suite.

Running the benchmarks cold trains every (model, method, repetition)
triple, which takes roughly an hour on one CPU core.  This script performs
that training up front (idempotently — cached artifacts are skipped) so
``pytest benchmarks/ --benchmark-only`` spends its time on the paper's
analyses rather than on SGD.

The build fans out across worker processes: parents first, then prune
runs, with per-artifact file locks so concurrent invocations are safe.

Usage::

    python benchmarks/build_zoo.py [--jobs N]

``--jobs 0`` means "all CPUs"; the default honours ``REPRO_NUM_WORKERS``
and falls back to serial execution.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import SMOKE, ZooSpec, build_zoo

# Every zoo artifact any benchmark touches, cheapest first.
BENCH_ZOO: list[tuple[str, str, str, int, bool]] = [
    # (task, model, method, repetitions, robust)
    ("cifar", "resnet20", "wt", 2, False),
    ("cifar", "resnet20", "sipp", 2, False),
    ("cifar", "resnet20", "ft", 2, False),
    ("cifar", "resnet20", "pfp", 2, False),
    ("cifar", "resnet20", "wt", 2, True),
    ("cifar", "resnet20", "ft", 2, True),
    ("cifar", "vgg16", "wt", 2, False),
    ("cifar", "vgg16", "ft", 2, False),
    ("cifar", "wrn16_8", "wt", 2, False),
    ("cifar", "wrn16_8", "ft", 2, False),
    ("imagenet", "resnet18", "wt", 1, False),
    ("imagenet", "resnet18", "ft", 1, False),
    ("voc", "deeplab_small", "wt", 1, False),
    ("voc", "deeplab_small", "ft", 1, False),
    ("voc", "deeplab_small", "pfp", 1, False),
]


def bench_zoo_specs() -> list[ZooSpec]:
    """The flat spec list behind ``BENCH_ZOO``."""
    return [
        ZooSpec(task, model, method, rep, robust)
        for task, model, method, reps, robust in BENCH_ZOO
        for rep in range(reps)
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description="pre-train the cached model zoo")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (0 = all CPUs; default: REPRO_NUM_WORKERS or 1)",
    )
    args = parser.parse_args(argv)

    timing = build_zoo(bench_zoo_specs(), SMOKE, jobs=args.jobs)
    for cell in timing.cells:
        status = "cached" if cell.cached else "built"
        print(f"{cell.key}: {status} in {cell.seconds:.1f}s", flush=True)
    print(timing.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
