"""Compiled training step vs tape step: speedup, BENCH_train.json.

Times one full training step (forward, loss, backward, BatchNorm stat
update, SGD update) at the paper's CIFAR batch size through the per-batch
autograd tape and through the :mod:`repro.infer` gradient-plan engine,
then

- emits ``BENCH_train.json`` at the repo root with per-model wall clocks
  and speedups,
- asserts the compiled path reaches the >= 2x per-step speedup target on
  at least one model (per-model factors vary with BLAS/core count; the
  deep ResNets are the reliable winners).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.autograd.tensor import Tensor
from repro.infer import TrainEngine
from repro.models.registry import build_model
from repro.nn.losses import CrossEntropyLoss
from repro.optim import SGD

REPO_ROOT = Path(__file__).resolve().parent.parent
SPEEDUP_TARGET = 2.0
BENCH_MODELS = ("resnet56", "densenet22", "wrn16_8")
BATCH_SIZE = 64
ROUNDS = 6
INNER = 2


def _interleaved(fn_a, fn_b, rounds=ROUNDS, inner=INNER):
    """Best per-call wall clock for two workloads measured back to back.

    Alternating the workloads within each round keeps slow drifts in
    machine load (CPU contention, allocator state) from landing entirely
    on one side, and averaging ``inner`` consecutive calls damps per-call
    jitter before the min is taken.
    """
    best_a = best_b = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(inner):
            fn_a()
        best_a = min(best_a, (time.perf_counter() - start) / inner)
        start = time.perf_counter()
        for _ in range(inner):
            fn_b()
        best_b = min(best_b, (time.perf_counter() - start) / inner)
    return best_a, best_b


def test_bench_train():
    rng = np.random.default_rng(0)
    images = rng.standard_normal((BATCH_SIZE, 3, 16, 16)).astype(np.float32)
    labels = rng.integers(0, 10, BATCH_SIZE)
    rows = {}
    for name in BENCH_MODELS:
        model = build_model(name, rng=np.random.default_rng(3))
        loss_fn = CrossEntropyLoss()
        optimizer = SGD(
            model.parameters(), lr=0.01, momentum=0.9, weight_decay=1e-4
        )
        engine = TrainEngine(model, loss_fn, optimizer)

        def tape_step():
            model.train()
            loss = loss_fn(model(Tensor(images)), labels)
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()

        engine.step(images, labels)  # warm-up: traces + compiles the plan
        assert engine.compiled_for(images, labels), f"{name} fell back to the tape"

        tape_s, engine_s = _interleaved(
            tape_step, lambda: engine.step(images, labels)
        )
        rows[name] = {
            "tape_s": round(tape_s, 4),
            "engine_s": round(engine_s, 4),
            "speedup": round(tape_s / engine_s, 3),
            "steps_per_s": round(1.0 / engine_s, 2),
        }

    best = max(row["speedup"] for row in rows.values())
    report = {
        "batch_size": BATCH_SIZE,
        "input_shape": [3, 16, 16],
        "rounds": ROUNDS,
        "inner": INNER,
        "models": rows,
        "best_speedup": best,
    }
    (REPO_ROOT / "BENCH_train.json").write_text(json.dumps(report, indent=2) + "\n")
    print()
    for name, row in rows.items():
        print(
            f"BENCH_train: {name} tape {row['tape_s']:.3f}s/step, "
            f"compiled {row['engine_s']:.3f}s/step, speedup {row['speedup']:.2f}x"
        )

    assert best >= SPEEDUP_TARGET, (
        f"expected >= {SPEEDUP_TARGET}x on at least one model, best {best:.2f}x"
    )
