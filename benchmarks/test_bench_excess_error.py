"""Bench F39–F47 / Fig. 6c,f — difference in excess error with OLS fits.

The pruned network's *additional* error on o.o.d. data, on top of the
parent's own o.o.d. penalty, per prune ratio.  Paper finding: positive and
growing with prune ratio (positive OLS slope through the origin).
"""

import numpy as np

from repro.experiments import corruption_excess_error_experiment
from repro.utils.tables import format_table

from benchmarks.conftest import run_once


def test_bench_excess_error_difference(benchmark, scale):
    def regenerate():
        return {
            m: corruption_excess_error_experiment("cifar", "resnet20", m, scale)
            for m in ("wt", "ft")
        }

    results = run_once(benchmark, regenerate)

    print()
    for method, res in results.items():
        rows = [
            [f"{r:.2f}", f"{100 * d:+.2f}"]
            for r, d in zip(res.ratios, res.differences.mean(axis=0))
        ]
        print(
            format_table(
                ["Prune ratio", "Δ excess error (%)"],
                rows,
                title=f"Fig. 6c/f analog — {method.upper()}",
            )
        )
        lo, hi = res.slope_ci
        print(f"{method.upper()} OLS slope {res.slope:+.4f} (95% CI [{lo:+.4f}, {hi:+.4f}])")

    # Paper findings:
    # 1. Pruning hurts disproportionately on o.o.d. data within the
    #    commensurate regime: positive slope for weight pruning, whose
    #    nominal curve stays commensurate over most of the ratio range.
    assert results["wt"].slope > 0
    # 2. The effect is statistically visible: the WT CI excludes strongly
    #    negative slopes.
    assert results["wt"].slope_ci[0] > -0.01
    # 3. Somewhere along the trajectory the pruned network pays a
    #    multi-point additional o.o.d. penalty.
    assert results["wt"].differences.mean(axis=0).max() > 0.01
    # 4. Filter pruning's curve leaves the commensurate regime early (its
    #    nominal error saturates), which at this scale drives ê − e
    #    *negative* at extreme ratios — a saturation artifact the paper's
    #    DeeplabV3 FT row also exhibits (App. D.5's "spurious consequence").
    #    Assert only that FT is finite and bounded.
    assert np.isfinite(results["ft"].differences).all()
    assert np.abs(results["ft"].differences).max() < 0.5
