"""Bench F4 — functional similarity under input noise (Fig. 4, App. C.2).

Matching-prediction rate and softmax ℓ₂ distance between pruned networks
and their parent, versus a separately trained network, across noise levels.
"""

import numpy as np

from repro.experiments import noise_similarity_experiment
from repro.utils.tables import format_table

from benchmarks.conftest import run_once


def test_bench_noise_similarity_wt(benchmark, scale):
    result = run_once(
        benchmark, lambda: noise_similarity_experiment("cifar", "resnet20", "wt", scale)
    )

    print()
    header = ["PR \\ eps"] + [f"{e:.1f}" for e in result.noise_levels]
    rows = [
        [f"{ratio:.2f}"] + [f"{m:.2f}" for m in result.match_rates[k]]
        for k, ratio in enumerate(result.ratios)
    ]
    rows.append(["separate"] + [f"{m:.2f}" for m in result.separate_match_rates])
    print(format_table(header, rows, title="Fig. 4a analog — matching predictions vs parent"))

    rows_l2 = [
        [f"{ratio:.2f}"] + [f"{d:.3f}" for d in result.l2_distances[k]]
        for k, ratio in enumerate(result.ratios)
    ]
    rows_l2.append(["separate"] + [f"{d:.3f}" for d in result.separate_l2_distances])
    print(format_table(header, rows_l2, title="Fig. 4b analog — softmax L2 distance"))

    # Paper findings:
    # 1. Moderately pruned networks match the parent far better than a
    #    separately trained network, at every noise level.
    moderate = result.match_rates[: len(result.ratios) // 2]
    assert (moderate.mean(axis=0) > result.separate_match_rates + 0.05).all()
    # 2. Similarity decreases as we prune more (first vs last checkpoint).
    assert result.match_rates[0].mean() > result.match_rates[-1].mean()
    # 3. The same ordering holds in the L2 metric (smaller = more similar).
    assert (result.l2_distances[0] < result.separate_l2_distances).all()
    # 4. Rates are proper probabilities.
    assert (result.match_rates >= 0).all() and (result.match_rates <= 1).all()


def test_bench_noise_similarity_ft(benchmark, scale):
    result = run_once(
        benchmark, lambda: noise_similarity_experiment("cifar", "resnet20", "ft", scale)
    )
    print(
        f"\nFT: match@lowest-PR={result.match_rates[0].mean():.2f} "
        f"match@highest-PR={result.match_rates[-1].mean():.2f} "
        f"separate={result.separate_match_rates.mean():.2f}"
    )
    # Filter-pruned nets are also closer to the parent than a stranger at
    # low prune ratios (App. C.2 extends Fig. 4 to FT).
    assert result.match_rates[0].mean() > result.separate_match_rates.mean()
