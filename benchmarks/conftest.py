"""Shared benchmark configuration.

Each benchmark regenerates one of the paper's tables or figures at the
calibrated ``SMOKE`` scale, prints the same rows/series the paper reports,
and asserts the qualitative *shape* of the result (who wins, orderings,
where curves collapse) — absolute numbers differ because the substrate is
a scaled synthetic task on CPU, not the authors' GPU testbed.

Trained artifacts come from the disk-cached model zoo (see
``build_zoo.py``); analysis results are memoized in-process, so benchmarks
that share curves (potential / excess error / tables) pay for evaluation
once per pytest session.
"""

from __future__ import annotations

import pytest

from repro.experiments import SMOKE

# Corruption subsets used for the larger-scale tasks to bound eval time.
IMAGENET_CORRUPTIONS = (
    "gaussian_noise",
    "shot_noise",
    "defocus_blur",
    "motion_blur",
    "snow",
    "fog",
    "contrast",
    "jpeg",
)
VOC_CORRUPTIONS = (
    "gaussian_noise",
    "defocus_blur",
    "snow",
    "brightness",
    "contrast",
    "jpeg",
)


@pytest.fixture(scope="session")
def scale():
    return SMOKE


def run_once(benchmark, fn):
    """Benchmark one expensive regeneration without repetition."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
