"""Bench F7/F35 — prune potential per corruption on the ImageNet analog.

A ResNet18 on the larger, 20-class task; the paper observes even higher
variance of the potential across corruptions than on CIFAR, and a much
lower structured-pruning potential (Table 2's ResNet18 FT row: 13.7%).
"""

import numpy as np

from repro.experiments import corruption_potential_experiment
from repro.utils.tables import format_table

from benchmarks.conftest import IMAGENET_CORRUPTIONS, run_once


def test_bench_imagenet_potential(benchmark, scale):
    def regenerate():
        return {
            m: corruption_potential_experiment(
                "imagenet",
                "resnet18",
                m,
                scale.with_(n_repetitions=1),
                corruptions=IMAGENET_CORRUPTIONS,
            )
            for m in ("wt", "ft")
        }

    results = run_once(benchmark, regenerate)

    print()
    wt, ft = results["wt"], results["ft"]
    rows = [
        [dist, f"{100 * w:.1f}", f"{100 * f:.1f}"]
        for dist, w, f in zip(wt.distributions, wt.mean, ft.mean)
    ]
    print(
        format_table(
            ["Distribution", "WT potential (%)", "FT potential (%)"],
            rows,
            title="Fig. 7 analog — ResNet18 on synth-ImageNet",
        )
    )

    wt_nominal = wt.potential_of("nominal").mean()
    ft_nominal = ft.potential_of("nominal").mean()
    corr = [d for d in wt.distributions if d not in ("nominal", "shifted")]
    wt_corr = np.array([wt.potential_of(c).mean() for c in corr])

    # 1. Weight pruning beats filter pruning on the harder task too.
    assert wt_nominal > ft_nominal
    # 2. The potential varies substantially across corruptions (Fig. 7's
    #    "significantly higher variance").
    assert wt_corr.max() - wt_corr.min() >= 0.2
    # 3. At least one corruption costs a large chunk of nominal potential.
    assert wt_corr.min() <= wt_nominal - 0.15
