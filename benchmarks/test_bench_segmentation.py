"""Bench F11/F37/T8 — the segmentation (VOC analog) experiments.

DeeplabV3's role is played by a compact encoder–decoder on the dense
synthetic task.  Paper findings mirrored here: weight pruning sustains a
meaningful prune ratio, structured pruning sustains far less (Table 8's FT
row is 0%), and corruption drops the potential further (Fig. 37).
"""

import numpy as np

from repro.experiments import (
    corruption_potential_experiment,
    prune_curve_experiment,
    prune_summary_row,
)
from repro.utils.tables import format_table

from benchmarks.conftest import VOC_CORRUPTIONS, run_once

VOC_SCALE_KW = dict(n_repetitions=1)


def test_bench_voc_prune_curves(benchmark, scale):
    voc_scale = scale.with_(**VOC_SCALE_KW)

    def regenerate():
        return {
            m: prune_curve_experiment("voc", "deeplab_small", m, voc_scale)
            for m in ("wt", "ft", "pfp")
        }

    results = run_once(benchmark, regenerate)

    print()
    rows = []
    for method, res in results.items():
        row = prune_summary_row(res, voc_scale.delta)
        rows.append(
            [
                method.upper(),
                f"{100 * row.orig_error:.2f}",
                f"{100 * row.error_delta:+.2f}",
                f"{100 * row.prune_ratio:.2f}",
                f"{100 * row.flop_reduction:.2f}",
                row.commensurate,
            ]
        )
    print(
        format_table(
            ["Method", "Orig. Err (%)", "ΔErr (%)", "PR (%)", "FR (%)", "Commensurate"],
            rows,
            title="Table 8 analog — DeeplabV3 analog on synth-VOC",
        )
    )

    wt_row = prune_summary_row(results["wt"], voc_scale.delta)
    ft_row = prune_summary_row(results["ft"], voc_scale.delta)
    # Weight pruning sustains a (much) higher ratio than FT on segmentation,
    # where the paper reports FT at 0%.
    assert wt_row.prune_ratio > ft_row.prune_ratio or not ft_row.commensurate
    # Dense prediction is prunable at all with weight pruning.
    assert wt_row.commensurate


def test_bench_voc_corruption_potential(benchmark, scale):
    voc_scale = scale.with_(**VOC_SCALE_KW)

    def regenerate():
        return corruption_potential_experiment(
            "voc", "deeplab_small", "wt", voc_scale, corruptions=VOC_CORRUPTIONS
        )

    res = run_once(benchmark, regenerate)
    print()
    rows = [
        [dist, f"{100 * mu:.1f}"] for dist, mu in zip(res.distributions, res.mean)
    ]
    print(format_table(["Distribution", "WT potential (%)"], rows,
                       title="Fig. 37 analog — potential per corruption, synth-VOC"))
    nominal = res.potential_of("nominal").mean()
    corr_min = min(
        res.potential_of(c).mean() for c in res.distributions if c != "nominal"
    )
    assert corr_min <= nominal + 1e-9
