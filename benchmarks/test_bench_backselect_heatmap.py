"""Bench F3 — informative-feature transfer heatmap (Fig. 3, App. C.1).

BackSelect masks test images down to their 10% most informative pixels per
model; the heatmap reports every model's confidence toward the true class
on every other model's informative pixels.
"""

import numpy as np

from repro.experiments import backselect_heatmap_experiment
from repro.utils.tables import format_table

from benchmarks.conftest import run_once


def test_bench_backselect_heatmap(benchmark, scale):
    result = run_once(
        benchmark,
        lambda: backselect_heatmap_experiment(
            "cifar", "resnet20", "wt", scale, n_pruned=4
        ),
    )

    print()
    header = ["pixels from \\ eval on"] + result.labels
    rows = [
        [result.labels[i]] + [f"{v:.2f}" for v in result.heatmap[i]]
        for i in range(len(result.labels))
    ]
    print(format_table(header, rows, title="Fig. 3 analog — confidence heatmap"))

    heat = result.heatmap
    sep = result.separate_index()
    parent = 0
    pruned = list(range(1, sep))

    # Paper findings:
    # 1. Pruned networks' informative pixels transfer back to the parent far
    #    better than the separate network's pixels do (the strongest signal
    #    in Fig. 3's left column).
    assert heat[pruned, parent].mean() > heat[sep, parent] + 0.05
    # 2. The parent's pixels are at least as informative to its pruned
    #    children as to the separately trained network (small-sample slack).
    assert heat[parent, pruned].mean() > heat[parent, sep] - 0.03
    # 3. Diagonal dominance: each model is confident on its own pixels.
    diag = np.diag(heat)
    assert (diag + 1e-6 >= heat.mean(axis=1) - 0.05).all()
    # 4. Moderately pruned children transfer better than the collapsed
    #    extreme checkpoint (the paper's PR=0.98 rows lose predictivity).
    assert heat[pruned[0], parent] > heat[pruned[-1], parent]
