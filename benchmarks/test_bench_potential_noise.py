"""Bench F1/F5/F28 — prune potential vs ℓ∞ noise level (Fig. 1, 5, 28).

The paper's motivating figure: potential is high on clean data and
collapses as noise grows, while a generator-aware reference classifier
(standing in for the human subject of Fig. 5) stays accurate.
"""

import numpy as np

from repro.data.noise import add_uniform_noise
from repro.data.synthetic import prototype_logits
from repro.experiments import make_suite, noise_potential_experiment
from repro.experiments.corruption_study import severity_sweep_experiment
from repro.utils.tables import format_table

from benchmarks.conftest import run_once


def test_bench_potential_vs_noise_resnet20(benchmark, scale):
    """Fig. 1's x-axis sweep, plus the shift-severity sweep that carries the
    collapse at this scale.

    Divergence from the paper (documented in EXPERIMENTS.md): the synthetic
    generator bakes pixel noise into every training image, so additive ℓ∞
    noise is *in-distribution* here and does not preferentially hurt pruned
    networks.  The paper's collapse phenomenon does reproduce for
    mean-shifting corruptions — we sweep brightness severity as the
    collapse axis.
    """

    def regenerate():
        noise = {
            m: noise_potential_experiment("cifar", "resnet20", m, scale)
            for m in ("wt", "ft")
        }
        collapse = severity_sweep_experiment(
            "cifar", "resnet20", "wt", scale, corruption="brightness"
        )
        return noise, collapse

    results, collapse = run_once(benchmark, regenerate)

    print()
    header = ["Method \\ eps"] + [f"{e:.1f}" for e in scale.noise_levels]
    rows = [
        [m.upper()] + [f"{v:.2f}" for v in r.mean] for m, r in results.items()
    ]
    print(format_table(header, rows, title="Fig. 1 analog — prune potential vs ℓ∞ noise"))
    rows = [["WT"] + [f"{v:.2f}" for v in collapse.mean]]
    print(
        format_table(
            ["Method \\ brightness severity"] + [str(s) for s in collapse.severities],
            rows,
            title="Fig. 1 analog — potential vs shift severity (collapse axis)",
        )
    )

    wt, ft = results["wt"], results["ft"]
    # 1. Clean potential is substantial for WT.
    assert wt.mean[0] >= 0.5
    # 2. Potentials are valid at every noise level (no spurious values).
    assert (wt.potentials >= 0).all() and (wt.potentials <= 0.97).all()
    # 3. The distribution-shift sweep collapses: the harshest severity
    #    retains less than half of the clean potential (Fig. 1's drop).
    assert collapse.mean[-1] <= 0.5 * wt.mean[0] + 1e-9
    assert collapse.mean[-1] <= collapse.mean[0] + 1e-9
    # 4. Filter pruning never exceeds weight pruning's clean potential.
    assert ft.mean[0] <= wt.mean[0] + 1e-9


def test_bench_human_reference_stays_accurate(benchmark, scale):
    """Fig. 5 analog: the generator-aware classifier is noise-stable at the
    levels that destroy the pruned networks' potential."""

    def regenerate():
        suite = make_suite("cifar", scale)
        test = suite.test_set()
        accs = []
        for li, eps in enumerate(scale.noise_levels):
            rng = np.random.default_rng(li)
            # The paper injects noise in normalized space; map the same
            # magnitude back to image space via the channel std.
            sigma = float(suite.normalizer().std.mean())
            noisy = np.clip(
                add_uniform_noise(test.images, eps * sigma, rng), 0, 1
            ).astype(np.float32)
            accs.append(
                float((prototype_logits(suite.config, noisy).argmax(1) == test.labels).mean())
            )
        return np.array(accs)

    accs = run_once(benchmark, regenerate)
    print("\nFig. 5 analog — reference-classifier accuracy per noise level:")
    print("  " + ", ".join(f"eps={e:.1f}: {a:.2f}" for e, a in zip(scale.noise_levels, accs)))
    assert accs[0] > 0.8
    assert accs[-1] > accs[0] - 0.15  # stays close to clean accuracy


def test_bench_wideresnet_shift_stability(benchmark, scale):
    """Fig. 28 / Table 9 finding: the wide-and-shallow family holds its
    potential under distribution shift better than plain deep ResNets.

    Measured on the shift axis that collapses ResNet20's potential at this
    scale (brightness severity; see the divergence note above)."""

    def regenerate():
        return (
            severity_sweep_experiment("cifar", "wrn16_8", "wt", scale, corruption="brightness"),
            severity_sweep_experiment("cifar", "resnet20", "wt", scale, corruption="brightness"),
        )

    wrn, rn = run_once(benchmark, regenerate)
    print(f"\nWRN16-8 potential by severity: {np.round(wrn.mean, 2)}")
    print(f"ResNet20 potential by severity: {np.round(rn.mean, 2)}")

    # The wide family's worst-case potential under the sweep is at least the
    # plain deep family's (paper: WRN16-8 minima stay high where ResNet20
    # minima hit 0).
    assert wrn.mean.min() >= rn.mean.min() - 0.05
