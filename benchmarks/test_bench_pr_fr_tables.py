"""Bench T4/T6/T8 — PR and FR at commensurate accuracy across networks.

Regenerates the per-network rows of Tables 4 (CIFAR), 6 (ImageNet), and 8
(VOC): the maximal prune ratio and FLOP reduction at which each method
stays within δ = 0.5% of the parent's test error.
"""

from repro.experiments import pr_fr_table

from benchmarks.conftest import run_once

CIFAR_MODELS = ["resnet20", "vgg16", "wrn16_8"]


def test_bench_table4_cifar(benchmark, scale):
    rows, text = run_once(
        benchmark, lambda: pr_fr_table("cifar", CIFAR_MODELS, ["wt", "ft"], scale)
    )
    print("\n" + text)

    by_key = {(r.model_name, r.method_name): r for r in rows}
    for model in CIFAR_MODELS:
        wt, ft = by_key[(model, "wt")], by_key[(model, "ft")]
        # Table 4's universal pattern: WT's PR exceeds FT's on every net.
        assert wt.prune_ratio > ft.prune_ratio, model
        # FR is meaningful and positive wherever PR is.
        assert wt.flop_reduction > 0 and ft.flop_reduction > 0

    # VGG16 is the most weight-prunable family (98% in the paper); expect it
    # to at least match ResNet20 here.
    assert by_key[("vgg16", "wt")].prune_ratio >= by_key[("resnet20", "wt")].prune_ratio - 0.07


def test_bench_table6_imagenet(benchmark, scale):
    im_scale = scale.with_(n_repetitions=1)
    rows, text = run_once(
        benchmark, lambda: pr_fr_table("imagenet", ["resnet18"], ["wt", "ft"], im_scale)
    )
    print("\n" + text)
    by_method = {r.method_name: r for r in rows}
    # Paper Table 6: ResNet18 WT PR 85.8% vs FT 13.7% — a massive gap.
    assert by_method["wt"].prune_ratio > by_method["ft"].prune_ratio + 0.2


def test_bench_table8_voc(benchmark, scale):
    voc_scale = scale.with_(n_repetitions=1)
    rows, text = run_once(
        benchmark, lambda: pr_fr_table("voc", ["deeplab_small"], ["wt", "ft"], voc_scale)
    )
    print("\n" + text)
    by_method = {r.method_name: r for r in rows}
    assert by_method["wt"].prune_ratio >= by_method["ft"].prune_ratio
