"""Bench T2/T9/T10 (+T12/T13) — overparameterization tables.

Average and minimum prune potential on the train vs test distribution,
for nominally trained networks (Tables 2/9/10) and robustly trained ones
(Tables 12/13).  The paper's punchlines encoded as assertions:

- nominal training: average potential drops under the corruption suite and
  the *minimum* potential collapses toward 0;
- robust training: the train/test-distribution gap largely closes and the
  minimum test-distribution potential becomes nonzero;
- WRN16-8 is the "genuinely overparameterized" family whose potential is
  most stable under distribution shift.
"""

import numpy as np

from repro.experiments import overparam_table

from benchmarks.conftest import run_once


def test_bench_overparam_nominal(benchmark, scale):
    rows, text = run_once(
        benchmark,
        lambda: overparam_table("cifar", ["resnet20", "wrn16_8"], ["wt", "ft"], scale),
    )
    print("\n" + text)

    by_key = {(r.model_name, r.method_name): r for r in rows}
    for (model, method), row in by_key.items():
        # Minimum never exceeds average by construction.
        assert row.test_dist.minimum_mean <= row.test_dist.average_mean + 1e-9
        # 1. For weight pruning, the test-distribution average potential
        #    drops below the nominal train-distribution potential.  (Filter
        #    pruning can show the *inverse* because its nominal potential is
        #    already low while saturating corruptions inflate per-corruption
        #    potentials — the paper's DenseNet22 FT row shows the same.)
        if method == "wt":
            assert (
                row.test_dist.average_mean <= row.train_dist.average_mean + 0.02
            ), (model, method)

    # 2. For the plain deep ResNet the minimum over corruptions collapses far
    #    below the average (Tables 9/10 report 0% minima for it); WRN16-8 is
    #    the paper's stable exception and is deliberately not asserted here.
    rn_wt = by_key[("resnet20", "wt")]
    assert rn_wt.test_dist.minimum_mean <= 0.6 * rn_wt.test_dist.average_mean + 1e-9

    # 3. WRN16-8's relative drop under shift is no worse than ResNet20's
    #    (the paper's "genuine overparameterization" contrast).
    def drop(row):
        return (row.train_dist.average_mean - row.test_dist.average_mean) / max(
            row.train_dist.average_mean, 1e-9
        )

    assert drop(by_key[("wrn16_8", "wt")]) <= drop(by_key[("resnet20", "wt")]) + 0.1


def test_bench_overparam_robust(benchmark, scale):
    def regenerate():
        robust_rows, robust_text = overparam_table(
            "cifar", ["resnet20"], ["wt", "ft"], scale, robust=True
        )
        nominal_rows, _ = overparam_table("cifar", ["resnet20"], ["wt", "ft"], scale)
        return robust_rows, robust_text, nominal_rows

    robust_rows, text, nominal_rows = run_once(benchmark, regenerate)
    print("\n" + text)

    robust_wt = next(r for r in robust_rows if r.method_name == "wt")
    nominal_wt = next(r for r in nominal_rows if r.method_name == "wt")

    def gap(row):
        return row.train_dist.average_mean - row.test_dist.average_mean

    print(
        f"train/test potential gap: nominal={gap(nominal_wt):+.3f} "
        f"robust={gap(robust_wt):+.3f}; robust min test potential="
        f"{robust_wt.test_dist.minimum_mean:.2f} (nominal: {nominal_wt.test_dist.minimum_mean:.2f})"
    )
    # Tables 12/13 vs 9/10: robust training closes the average gap...
    assert gap(robust_wt) <= gap(nominal_wt) + 0.02
    # ...and lifts the minimum test-distribution potential off the floor.
    assert robust_wt.test_dist.minimum_mean >= nominal_wt.test_dist.minimum_mean
