"""Serving-layer benchmark: seeded mixed traffic, SLOs, BENCH_serve.json.

Drives the ``serve-bench`` scenario — three pruned registry models × two
input shapes under seeded lognormal heavy-tail arrivals on a virtual
clock (measured engine time charged to the clock) — then

- emits ``BENCH_serve.json`` at the repo root with p50/p99 latency,
  throughput, shed/deadline-miss rates, and the batch-occupancy
  histogram,
- asserts the run's invariants: zero lost requests, bitwise parity of a
  served sample against direct ``engine_for`` calls, and real coalescing
  (mean batch occupancy above one request's worth of rows).
"""

from __future__ import annotations

from pathlib import Path

from repro.serve import run_serve_bench

REPO_ROOT = Path(__file__).resolve().parent.parent
N_REQUESTS = 400
SEED = 0


def test_bench_serve():
    report = run_serve_bench(
        n_requests=N_REQUESTS,
        seed=SEED,
        out=REPO_ROOT / "BENCH_serve.json",
    )
    load = report["load"]
    print()
    print(
        f"BENCH_serve: {load['n_requests']} requests, "
        f"{load['batches']} batches "
        f"(occupancy mean {load['batch_occupancy']['mean']:.1f}), "
        f"p50 {load['latency_p50_ms']:.2f}ms p99 {load['latency_p99_ms']:.2f}ms, "
        f"{load['throughput_rps']:.0f} req/s, "
        f"shed {load['shed']}, missed {load['deadline_miss']}, "
        f"parity {'ok' if report['parity']['bitwise_equal'] else 'FAILED'}"
    )

    assert load["lost"] == 0, "every request must reach a terminal state"
    assert load["errors"] == 0
    assert report["parity"]["bitwise_equal"], (
        f"{report['parity']['mismatches']} served responses diverged bitwise "
        "from direct engine_for calls"
    )
    # Dynamic batching must actually coalesce under heavy-tail arrivals.
    assert load["batches"] < load["n_requests"]
    assert load["batch_occupancy"]["mean"] > 1.0
    # The plan LRU stayed within its configured budget.
    registry = report["registry"]
    assert registry["plan_memory_bytes"] <= registry["memory_budget_bytes"]
