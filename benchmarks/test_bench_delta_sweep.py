"""Bench F38 — sensitivity of the prune potential to the margin δ (App. D.4).

The paper's check that δ = 0.5% is not load-bearing: potentials grow with
δ, but the cross-distribution ordering (nominal ≫ noise corruptions) holds
for every δ.
"""

import numpy as np

from repro.experiments import delta_sweep_experiment
from repro.utils.tables import format_table

from benchmarks.conftest import run_once

DELTAS = (0.0, 0.005, 0.01, 0.02, 0.05)
DISTS = ["gaussian_noise", "jpeg", "brightness"]


def test_bench_delta_sweep(benchmark, scale):
    result = run_once(
        benchmark,
        lambda: delta_sweep_experiment(
            "cifar", "resnet20", "wt", scale, deltas=DELTAS, corruptions=DISTS
        ),
    )

    mean = result.mean()  # (J, D)
    print()
    header = ["delta \\ dist"] + result.distributions
    rows = [
        [f"{d:.3f}"] + [f"{100 * v:.1f}" for v in mean[j]]
        for j, d in enumerate(result.deltas)
    ]
    print(format_table(header, rows, title="Fig. 38 analog — potential vs δ"))

    # 1. Potential is non-decreasing in δ for every distribution.
    assert (np.diff(mean, axis=0) >= -1e-9).all()
    # 2. The qualitative ordering is δ-independent: the gaussian-noise
    #    potential never exceeds the nominal potential at any δ.
    nom = result.distributions.index("nominal")
    gauss = result.distributions.index("gaussian_noise")
    assert (mean[:, gauss] <= mean[:, nom] + 1e-9).all()
    # 3. At the paper's δ = 0.5% the gap is strict.
    j = list(result.deltas).index(0.005)
    assert mean[j, gauss] < mean[j, nom]
