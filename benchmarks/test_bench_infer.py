"""Compiled inference vs plain Module forward: speedup, BENCH_infer.json.

Times eval-mode logits for the paper's deep CIFAR models (random weights,
half their prunable parameters masked — the state every study loop
evaluates in) through the plain ``Module`` forward and through the
:mod:`repro.infer` engine, then

- emits ``BENCH_infer.json`` at the repo root with per-model wall clocks
  and speedups,
- asserts the engine reaches the >= 2x speedup target on at least one
  model (per-model factors vary with BLAS/core count; the deep ResNets
  and DenseNet are the reliable winners).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.infer import InferenceEngine
from repro.models.registry import build_model
from repro.nn.prunable import PrunableWeightMixin
from tests.infer.test_engine import assert_parity, module_logits

REPO_ROOT = Path(__file__).resolve().parent.parent
SPEEDUP_TARGET = 2.0
BENCH_MODELS = ("resnet56", "resnet110", "densenet22")
N_IMAGES = 256
BATCH_SIZE = 256
REPEATS = 3


def _prune_half(model):
    for module in model.modules():
        if isinstance(module, PrunableWeightMixin):
            weight = module.weight.data
            cut = np.median(np.abs(weight))
            module.set_weight_mask((np.abs(weight) > cut).astype(np.float32))


def _best_of(fn, repeats=REPEATS):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_infer():
    rng = np.random.default_rng(0)
    images = rng.standard_normal((N_IMAGES, 3, 16, 16)).astype(np.float32)
    rows = {}
    for name in BENCH_MODELS:
        model = build_model(name, rng=np.random.default_rng(3))
        _prune_half(model)
        engine = InferenceEngine(model, batch_size=BATCH_SIZE)

        got = engine.logits(images)  # warm-up: traces + compiles the plan
        assert engine.compiled_for(images), f"{name} fell back to module forward"
        assert_parity(got, module_logits(model, images))

        module_s = _best_of(lambda: module_logits(model, images))
        engine_s = _best_of(lambda: engine.logits(images))
        rows[name] = {
            "module_s": round(module_s, 4),
            "engine_s": round(engine_s, 4),
            "speedup": round(module_s / engine_s, 3),
            "images_per_s": round(N_IMAGES / engine_s, 1),
        }

    best = max(row["speedup"] for row in rows.values())
    report = {
        "n_images": N_IMAGES,
        "batch_size": BATCH_SIZE,
        "input_shape": [3, 16, 16],
        "pruned": True,
        "repeats": REPEATS,
        "models": rows,
        "best_speedup": best,
    }
    (REPO_ROOT / "BENCH_infer.json").write_text(json.dumps(report, indent=2) + "\n")
    print()
    for name, row in rows.items():
        print(
            f"BENCH_infer: {name} module {row['module_s']:.3f}s, "
            f"engine {row['engine_s']:.3f}s, speedup {row['speedup']:.2f}x"
        )

    assert best >= SPEEDUP_TARGET, (
        f"expected >= {SPEEDUP_TARGET}x on at least one model, best {best:.2f}x"
    )
