"""Serial vs parallel zoo building: scaling, determinism, BENCH_parallel.json.

Builds the same micro zoo twice into fresh cache directories — once with
``jobs=1`` (the in-process serial fallback) and once with ``jobs=4`` — and

- asserts the two runs publish byte-identical artifact keys and contents,
- emits ``BENCH_parallel.json`` at the repo root with the measured wall
  clocks and speedup,
- asserts the >= 2x speedup target only on hosts with >= 4 CPU cores
  (on a single-core container the pool degenerates to time slicing and
  wall-clock speedup is physically impossible).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.experiments import SMOKE, ZooSpec
from repro.experiments import zoo
from repro.utils.serialization import load_state

REPO_ROOT = Path(__file__).resolve().parent.parent
PARALLEL_JOBS = 4
SPEEDUP_TARGET = 2.0

# Small enough to finish in seconds serially, enough cells (2 parents +
# 4 prune runs) that a 4-worker pool has real work to spread.
BENCH_SCALE = SMOKE.with_(
    n_train=64, n_test=32, image_size=8, num_classes=4, base_width=2,
    parent_epochs=1, retrain_epochs=1, target_ratios=(0.3, 0.6),
    n_repetitions=2,
)

BENCH_SPECS = [
    ZooSpec("cifar", "resnet20", method, rep)
    for method in ("wt", "ft")
    for rep in range(BENCH_SCALE.n_repetitions)
]


def _timed_build(cache_dir: Path, jobs: int):
    os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    zoo.cached_suite.cache_clear()
    start = time.perf_counter()
    timing = zoo.build_zoo(BENCH_SPECS, BENCH_SCALE, jobs=jobs)
    elapsed = time.perf_counter() - start
    return elapsed, timing, {p.name: p for p in cache_dir.glob("*.npz")}


def test_bench_parallel_scaling(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))  # restored after

    serial_s, serial_timing, serial_artifacts = _timed_build(
        tmp_path / "serial", jobs=1
    )
    parallel_s, parallel_timing, parallel_artifacts = _timed_build(
        tmp_path / "parallel", jobs=PARALLEL_JOBS
    )

    # Determinism: the worker count must never leak into the artifacts.
    assert sorted(serial_artifacts) == sorted(parallel_artifacts)
    for name in serial_artifacts:
        arrays_s, meta_s = load_state(serial_artifacts[name])
        arrays_p, meta_p = load_state(parallel_artifacts[name])
        assert meta_s == meta_p
        assert sorted(arrays_s) == sorted(arrays_p)
        for key in arrays_s:
            np.testing.assert_array_equal(arrays_s[key], arrays_p[key])

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    report = {
        "cells": len(BENCH_SPECS) + BENCH_SCALE.n_repetitions,  # + parents
        "jobs": PARALLEL_JOBS,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 4),
        "parallel_s": round(parallel_s, 4),
        "speedup": round(speedup, 3),
        # Cache-aware rollups from the GridTiming returned by build_zoo:
        # both runs hit cold caches here, so hit rates should be 0 and the
        # grid speedup reflects computed cells only.
        "serial_cache_hit_rate": round(serial_timing.cache_hit_rate, 3),
        "parallel_cache_hit_rate": round(parallel_timing.cache_hit_rate, 3),
        "parallel_grid_speedup": round(parallel_timing.speedup, 3),
        "parallel_throughput_cells_per_s": round(parallel_timing.throughput, 3),
        "artifacts_identical": True,
    }
    (REPO_ROOT / "BENCH_parallel.json").write_text(json.dumps(report, indent=2) + "\n")
    print()
    print(f"BENCH_parallel: serial {serial_s:.2f}s, "
          f"jobs={PARALLEL_JOBS} {parallel_s:.2f}s, speedup {speedup:.2f}x "
          f"on {os.cpu_count()} cores")

    if (os.cpu_count() or 1) >= PARALLEL_JOBS:
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >= {SPEEDUP_TARGET}x at jobs={PARALLEL_JOBS}, "
            f"got {speedup:.2f}x"
        )
