"""Bench F2/F9 — prune-accuracy curves for every registered method (Fig. 2/9).

Regenerates the ResNet20/CIFAR curves of Fig. 2 and the accuracy-drop
curves of Fig. 9 for the whole method registry, checks the paper's
headline ordering — weight pruning (WT/SiPP) sustains much higher prune
ratios than filter pruning (FT/PFP) — and writes the per-method nominal
potentials to ``BENCH_curves.json``.
"""

import json
from pathlib import Path

import numpy as np

from repro.experiments import prune_curve_experiment, prune_summary_row
from repro.experiments.prune_curves import nominal_potential
from repro.pruning import available_methods
from repro.utils.tables import format_table

from benchmarks.conftest import run_once

PAPER_METHODS = ["wt", "sipp", "ft", "pfp"]
METHODS = PAPER_METHODS + [m for m in available_methods() if m not in PAPER_METHODS]


def test_bench_prune_accuracy_curves(benchmark, scale):
    def regenerate():
        return {
            m: prune_curve_experiment("cifar", "resnet20", m, scale) for m in METHODS
        }

    results = run_once(benchmark, regenerate)

    rows = []
    for method, res in results.items():
        for ratio, err, std in zip(res.ratios, res.error_mean, res.error_std):
            rows.append(
                [method.upper(), f"{ratio:.2f}", f"{100 * err:.1f}", f"{100 * std:.1f}"]
            )
    print()
    print(
        format_table(
            ["Method", "Target PR", "Test err (%)", "± std"],
            rows,
            title="Fig. 2 analog — prune-accuracy curves, ResNet20/synth-CIFAR",
        )
    )

    potentials = {m: nominal_potential(r, scale.delta).mean() for m, r in results.items()}
    print(f"\nNominal prune potential: "
          + ", ".join(f"{m.upper()}={p:.2f}" for m, p in potentials.items()))

    Path("BENCH_curves.json").write_text(json.dumps(
        {
            "scale_digest": scale.digest(),
            "methods": {
                m: {
                    "nominal_potential": float(potentials[m]),
                    "parent_error": float(results[m].parent_errors.mean()),
                    "final_error": float(results[m].error_mean[-1]),
                }
                for m in METHODS
            },
        },
        indent=2,
    ))

    # Shape assertions (paper: Table 4 / Fig. 2) — scoped to the paper's
    # four methods; the extra registry families only get sanity bounds.
    # 1. Weight pruning sustains far higher ratios than filter pruning.
    assert min(potentials["wt"], potentials["sipp"]) > max(
        potentials["ft"], potentials["pfp"]
    )
    # 2. Every method is commensurate somewhere (nonzero potential).
    assert all(p > 0 for p in potentials.values())
    # 3. Weight methods stay commensurate beyond 80% sparsity.
    assert potentials["wt"] >= 0.8
    # 4. Curves end in collapse: the most extreme checkpoint is clearly
    #    worse than the parent for every paper method.
    for method in PAPER_METHODS:
        res = results[method]
        assert res.error_mean[-1] > res.parent_errors.mean() + scale.delta, method
    # 5. The random control arm never meaningfully beats informed scoring.
    assert potentials["random"] <= potentials["wt"] + 0.1


def test_bench_prune_summary_rows(benchmark, scale):
    """Commensurate-accuracy operating points (Table 4 rows for ResNet20)."""

    def regenerate():
        return [
            prune_summary_row(
                prune_curve_experiment("cifar", "resnet20", m, scale), scale.delta
            )
            for m in METHODS
        ]

    rows = run_once(benchmark, regenerate)
    print()
    print(
        format_table(
            ["Method", "Orig. Err (%)", "ΔErr (%)", "PR (%)", "FR (%)", "Commensurate"],
            [
                [
                    r.method_name.upper(),
                    f"{100 * r.orig_error:.2f}",
                    f"{100 * r.error_delta:+.2f}",
                    f"{100 * r.prune_ratio:.2f}",
                    f"{100 * r.flop_reduction:.2f}",
                    r.commensurate,
                ]
                for r in rows
            ],
            title="Table 4 analog — ResNet20 rows",
        )
    )
    by_method = {r.method_name: r for r in rows}
    # FR moves with PR for each method.
    for r in rows:
        assert 0 < r.flop_reduction <= r.prune_ratio + 0.15
    # Paper: WT ~85% PR on ResNet20 — we expect the same regime (>= 70%).
    assert by_method["wt"].prune_ratio >= 0.7
