"""Bench F6 — per-corruption prune potential on CIFAR (Fig. 6, App. D.2).

For each corruption of the -C suite, the prune potential extracted from
the corrupted prune-accuracy curve.  The paper's finding: potential varies
wildly by corruption, hitting ~0 for the noise family while staying near
nominal for mild digital corruptions.
"""

import numpy as np

from repro.experiments import corruption_potential_experiment
from repro.utils.tables import format_table

from benchmarks.conftest import run_once


def test_bench_potential_per_corruption(benchmark, scale):
    def regenerate():
        return {
            m: corruption_potential_experiment("cifar", "resnet20", m, scale)
            for m in ("wt", "ft")
        }

    results = run_once(benchmark, regenerate)

    print()
    wt = results["wt"]
    rows = [
        [dist, f"{100 * mu:.1f}", f"{100 * sd:.1f}"]
        for dist, mu, sd in zip(wt.distributions, wt.mean, wt.std)
    ]
    print(
        format_table(
            ["Distribution", "WT potential (%)", "± std"],
            rows,
            title="Fig. 6b analog — WT prune potential per distribution",
        )
    )
    ft = results["ft"]
    rows = [
        [dist, f"{100 * mu:.1f}", f"{100 * sd:.1f}"]
        for dist, mu, sd in zip(ft.distributions, ft.mean, ft.std)
    ]
    print(
        format_table(
            ["Distribution", "FT potential (%)", "± std"],
            rows,
            title="Fig. 6e analog — FT prune potential per distribution",
        )
    )

    # The paper's finding is that the potential *varies wildly and
    # unpredictably* across corruptions, with some collapsing it while
    # others preserve it.  (Which corruptions collapse it differs at this
    # scale: mean-shifting weather/digital corruptions rather than the
    # additive-noise family, whose statistics the synthetic generator
    # already exposes during training — see EXPERIMENTS.md.)
    for method, res in results.items():
        nominal = res.potential_of("nominal").mean()
        corruption_means = {
            n: res.potential_of(n).mean()
            for n in res.distributions
            if n not in ("nominal", "shifted")
        }
        hardest = min(corruption_means.values())
        best = max(corruption_means.values())
        print(
            f"{method.upper()}: nominal={nominal:.2f} hardest={hardest:.2f} "
            f"best={best:.2f} spread={best - hardest:.2f}"
        )
        # 1. Some corruption destroys most of the potential.
        assert hardest <= 0.35 * nominal + 1e-9, method
        # 2. Some corruption is benign: potential within 35% of nominal.
        assert best >= 0.65 * nominal, method
        # 3. The spread is wide — the potential is task-dependent.
        assert best - hardest >= 0.3 * nominal, method

    # 4. The weather/digital mean shifts are the collapsing family here;
    #    verify the collapse is not an artifact of a single corruption.
    wt_means = {
        n: results["wt"].potential_of(n).mean()
        for n in results["wt"].distributions
        if n not in ("nominal", "shifted")
    }
    nominal_wt = results["wt"].potential_of("nominal").mean()
    n_collapsed = sum(1 for v in wt_means.values() if v <= 0.75 * nominal_wt)
    assert n_collapsed >= 2

    # 5. The shifted (CIFAR10.1-analog) set remains mild: within one grid
    #    step of the nominal potential and far above the worst corruption.
    shifted = results["wt"].potential_of("shifted").mean()
    assert abs(shifted - nominal_wt) <= 0.1
    assert shifted > min(wt_means.values())
