"""Ablation benches for the design choices DESIGN.md calls out.

Not paper figures, but checks that the reproduction's conclusions are not
artifacts of a single knob setting:

- corruption severity (the paper fixes severity 3 of 5),
- retrain mode (LR rewind vs fine-tune vs weight rewind; Renda et al.),
- SiPP sample-batch size (data-informed sensitivity stability).
"""

import numpy as np

from repro.experiments import SMOKE, ZooSpec, get_parent_state, make_model, make_suite, make_trainer
from repro.experiments.corruption_study import severity_sweep_experiment
from repro.pruning import PruneRetrain, SiPP, build_method
from repro.training import evaluate_model
from repro.utils.tables import format_table

from benchmarks.conftest import run_once


def test_bench_ablation_severity(benchmark, scale):
    """Potential degrades with shift severity on the collapsing corruption."""
    result = run_once(
        benchmark,
        lambda: severity_sweep_experiment(
            "cifar", "resnet20", "wt", scale, corruption="brightness"
        ),
    )
    print()
    rows = [[f"severity {s}", f"{100 * p:.1f}"] for s, p in zip(result.severities, result.mean)]
    print(format_table(["Level", "WT potential (%)"], rows,
                       title="Ablation — potential vs brightness severity"))
    # Trend: the harshest severity has less potential than the mildest.
    assert result.mean[-1] <= result.mean[0] + 1e-9
    # Severity 3 (the paper's pick) already exposes a substantial drop.
    assert result.mean[2] <= result.mean[0] + 1e-9


def test_bench_ablation_retrain_mode(benchmark, scale):
    """The three retrain modes of Renda et al. on one prune trajectory."""
    ratios = (0.5, 0.8)

    def regenerate():
        suite = make_suite("cifar", scale)
        out = {}
        for mode in PruneRetrain.RETRAIN_MODES:
            spec = ZooSpec("cifar", "resnet20", None, 0)
            model = make_model(spec, suite, scale)
            model.load_state_dict(get_parent_state(spec, scale))
            trainer = make_trainer(model, suite, scale, spec)
            pipeline = PruneRetrain(
                trainer,
                build_method("wt"),
                retrain_epochs=scale.retrain_epochs,
                retrain_mode=mode,
            )
            run = pipeline.run(target_ratios=ratios)
            out[mode] = (run.parent_test_error, run.test_errors)
        return out

    results = run_once(benchmark, regenerate)
    print()
    rows = [
        [mode, f"{100 * parent:.1f}"] + [f"{100 * e:.1f}" for e in errs]
        for mode, (parent, errs) in results.items()
    ]
    print(
        format_table(
            ["Retrain mode", "Parent err (%)", *[f"err @ PR={r}" for r in ratios]],
            rows,
            title="Ablation — retrain mode (WT, ResNet20)",
        )
    )
    # All modes stay within a sane band of the parent at PR=0.5 ...
    for mode, (parent, errs) in results.items():
        assert errs[0] < parent + 0.25, mode
    # ... and retraining with the full recipe (lr_rewind) is at least as
    # good as plain fine-tuning at the hardest ratio (Renda et al.'s
    # finding, which motivated the paper's pipeline choice).
    assert results["lr_rewind"][1][-1] <= results["finetune"][1][-1] + 0.03


def test_bench_ablation_sipp_sample_size(benchmark, scale):
    """SiPP's immediate (pre-retrain) damage vs the size of its sample S."""

    def regenerate():
        suite = make_suite("cifar", scale)
        test = suite.test_set()
        normalizer = suite.normalizer()
        out = {}
        for sample_size in (4, 32, 128):
            spec = ZooSpec("cifar", "resnet20", None, 0)
            model = make_model(spec, suite, scale)
            model.load_state_dict(get_parent_state(spec, scale))
            sample = normalizer(suite.train_set().images[:sample_size])
            SiPP().prune(model, 0.7, sample)
            out[sample_size] = evaluate_model(
                model, test.images, test.labels, normalizer
            )["error"]
        return out

    errors = run_once(benchmark, regenerate)
    print()
    rows = [[n, f"{100 * e:.1f}"] for n, e in errors.items()]
    print(format_table(["|S|", "err after 70% SiPP prune, no retrain (%)"], rows,
                       title="Ablation — SiPP sample-batch size"))
    # More samples never catastrophically hurt; the large-sample estimate is
    # at least as good as the tiny-sample one (allowing noise slack).
    assert errors[128] <= errors[4] + 0.1
