"""Bench F8/F48–F60 — robust (re-)training experiments (Section 6, App. E).

Networks trained and retrained with the Table-11 corruption augmentation.
Paper findings: (1) potential on train-distribution corruptions is largely
recovered; (2) held-out corruptions can still cost potential; (3) the
excess-error slope shrinks relative to nominal training.
"""

import numpy as np

from repro.experiments import (
    corruption_excess_error_experiment,
    corruption_potential_experiment,
    robust_excess_error_experiment,
    robust_potential_experiment,
)
from repro.utils.tables import format_table

from benchmarks.conftest import run_once


def test_bench_robust_potential(benchmark, scale):
    result = run_once(
        benchmark, lambda: robust_potential_experiment("cifar", "resnet20", "wt", scale)
    )

    base = result.base
    print()
    rows = [
        [
            dist,
            "train" if dist in result.protocol.train_corruptions
            else "test" if dist in result.protocol.test_corruptions
            else "-",
            f"{100 * mu:.1f}",
            f"{100 * sd:.1f}",
        ]
        for dist, mu, sd in zip(base.distributions, base.mean, base.std)
    ]
    print(
        format_table(
            ["Distribution", "Side", "Potential (%)", "± std"],
            rows,
            title="Fig. 8b analog — robustly trained WT ResNet20",
        )
    )

    train_pot = result.train_dist_potentials().mean()
    test_pot = result.test_dist_potentials().mean()
    print(f"avg train-dist potential {train_pot:.2f}; avg test-dist potential {test_pot:.2f}")

    # 1. Robust training keeps substantial potential on the corruptions it
    #    trained on.
    assert train_pot >= 0.3
    # 2. Held-out corruptions are at most as good on average (the residual
    #    gap of Section 6), allowing small sampling slack.
    assert test_pot <= train_pot + 0.1


def test_bench_robust_vs_nominal_corruption_recovery(benchmark, scale):
    """Robust (re-)training makes *pruned* networks more accurate under the
    corruptions it modelled, at matched prune ratios.

    (Potential itself is not directly comparable across training regimes at
    this scale because the robust parent is stronger, which raises the bar
    Definition 1 measures against — so we compare corrupted test error of
    the pruned checkpoints instead.)"""

    def regenerate():
        robust = robust_potential_experiment("cifar", "resnet20", "wt", scale)
        nominal = corruption_potential_experiment("cifar", "resnet20", "wt", scale)
        return robust, nominal

    robust, nominal = run_once(benchmark, regenerate)
    train_corrs = robust.protocol.train_corruptions

    def mean_pruned_error(curves_by_dist, names):
        """Mean corrupted test error over all checkpoints and repetitions."""
        return float(
            np.mean([[c.errors for c in curves_by_dist[n]] for n in names])
        )

    robust_err = mean_pruned_error(robust.base.curves, train_corrs)
    nominal_err = mean_pruned_error(nominal.curves, train_corrs)
    print(
        f"\nmean pruned-network error on train-dist corruptions: "
        f"robust={100 * robust_err:.1f}% nominal-trained={100 * nominal_err:.1f}%"
    )
    assert robust_err < nominal_err


def test_bench_robust_excess_error_slope(benchmark, scale):
    """Fig. 8c: the excess-error slope shrinks under robust training."""

    def regenerate():
        robust = robust_excess_error_experiment("cifar", "resnet20", "wt", scale)
        nominal = corruption_excess_error_experiment("cifar", "resnet20", "wt", scale)
        return robust, nominal

    robust, nominal = run_once(benchmark, regenerate)
    print(
        f"\nOLS slope: nominal={nominal.slope:+.4f} robust={robust.slope:+.4f} "
        f"(robust CI [{robust.slope_ci[0]:+.4f}, {robust.slope_ci[1]:+.4f}])"
    )
    assert robust.slope < nominal.slope
